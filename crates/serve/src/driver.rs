//! The multi-tenant execution driver.
//!
//! A [`Server`] owns the serving stack — an [`AutoPlanner`] over a shared
//! registry, a [`PlanCache`], and a [`SchedulerPool`] — plus a team of
//! driver threads consuming a job queue. Each [`JobRequest`] is an
//! independent SPMD world; many of them run concurrently:
//!
//! * **blocking backends** (threaded/sharded) execute over the *shared*
//!   [`SchedulerPool`], so the combined runnable ranks of all concurrent
//!   jobs — not each job's separately — respect one machine-wide worker
//!   cap;
//! * **event-backend** worlds are single-threaded discrete-event
//!   simulations, so the driver threads simply interleave them.
//!
//! The pipeline per job is admission → cached planning (auto-selection on
//! a miss) → execution → a [`JobResult`] carrying the [`Selection`], the
//! plan and the per-rank [`ExecReport`]. Every step is deterministic, so a
//! job's result is bitwise-identical to the same job run serially through
//! `RunSession` — concurrency changes throughput, never answers.
//!
//! # Fault recovery
//!
//! A job may arm a deterministic [`FaultPlan`]: the event scheduler kills
//! the planned ranks mid-run and the execution comes back as the typed
//! [`ExecError::RankFailed`]. Under a [`RetryPolicy`] the driver recovers
//! by *shrinking the world to the survivors* — the paper's §1 argument that
//! COSMA's grid fitting handles awkward processor counts means p′ = p − k
//! is as servable as p — replanning through the same cache (a different
//! `p` is a different [`PlanKey`], so failed worlds never poison cached
//! plans) and re-executing clean. The per-job [`JobResult::attempts`] and
//! [`JobResult::degraded`] record what recovery did.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cosma::api::{AlgorithmRegistry, ExecReport, PlanError, RunSession};
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::{ExecBackend, ExecError, SchedulerPool};
use mpsim::machine::{Placement, Topology};
use mpsim::pool::PoolStats;
use mpsim::FaultPlan;

use crate::auto::{AlgoChoice, AutoPlanner, Selection};
use crate::cache::{CacheStats, PlanCache};
use crate::key::PlanKey;

/// How many times a failed job may be re-executed, and how long to pause
/// between attempts.
///
/// Only [`ExecError::RankFailed`] — the typed fault-injection failure — is
/// retried: it is the one failure mode with a principled recovery (drop the
/// dead ranks, replan for the survivors). Structural errors (infeasible
/// grids, unsupported rank counts) are deterministic and would fail
/// identically again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions allowed, first attempt included; `1` means no
    /// retries. Clamped to at least 1.
    pub max_attempts: usize,
    /// Wall-clock pause between attempts (virtual time is free; this knob
    /// models a caller-visible re-admission delay).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Up to `n` attempts with no pause between them.
    pub fn attempts(n: usize) -> Self {
        RetryPolicy {
            max_attempts: n.max(1),
            backoff: Duration::ZERO,
        }
    }

    /// Set the pause between attempts.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// One tenant request: a problem, its inputs, and the per-request knobs.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen id, echoed in the [`JobResult`].
    pub id: u64,
    /// The multiplication to run.
    pub prob: MmmProblem,
    /// Left operand (`m × k`).
    pub a: Matrix,
    /// Right operand (`k × n`).
    pub b: Matrix,
    /// Which algorithms may serve the request (default: all of them).
    pub choice: AlgoChoice,
    /// Cost model override (default: the Piz-Daint-like two-sided model).
    pub model: Option<CostModel>,
    /// Communication–computation overlap mode (default: on).
    pub overlap: bool,
    /// Enforced per-rank memory budget, if any.
    pub mem_budget: Option<u64>,
    /// Execution backend override (default: [`ExecBackend::auto`] for the
    /// problem's world size). On blocking backends the *shared* scheduler
    /// pool supplies the worker slots, so a `Sharded { workers }` count is
    /// superseded by the pool's.
    pub backend: Option<ExecBackend>,
    /// Network topology the job's machine is measured under (default:
    /// [`Topology::Flat`]). Part of the plan-cache key: cached plans never
    /// cross machine shapes.
    pub topology: Topology,
    /// Rank→node placement under [`topology`](Self::topology) (default:
    /// [`Placement::Block`]).
    pub placement: Placement,
    /// Deterministic fault injection for this job's execution (default:
    /// none). Arming a plan routes the job to the event backend unless an
    /// explicit [`backend`](Self::backend) was pinned — blocking backends
    /// ignore fault plans.
    pub faults: Option<FaultPlan>,
    /// Recovery policy when an injected fault fells the world (default:
    /// [`RetryPolicy::none`] — the typed failure surfaces immediately).
    pub retry: RetryPolicy,
}

impl JobRequest {
    /// A job with default knobs: auto algorithm selection, default cost
    /// model, overlap on, auto backend.
    pub fn new(id: u64, prob: MmmProblem, a: Matrix, b: Matrix) -> Self {
        JobRequest {
            id,
            prob,
            a,
            b,
            choice: AlgoChoice::Auto,
            model: None,
            overlap: true,
            mem_budget: None,
            backend: None,
            topology: Topology::Flat,
            placement: Placement::Block,
            faults: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Restrict the algorithm choice.
    pub fn choice(mut self, choice: AlgoChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Pin the execution backend.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Measure under `topology`'s contention model (event backend only —
    /// word counters and results are topology-independent).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Choose the rank→node placement for the job's topology.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Arm a deterministic [`FaultPlan`] for this job's execution.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Set the recovery policy for injected faults.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }
}

/// What a successfully served job produced.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The auto-planner's verdict (memoized across identical requests).
    pub selection: Selection,
    /// The executed plan (shared with the cache entry).
    pub plan: Arc<DistPlan>,
    /// The assembled product and per-rank measured statistics.
    pub report: ExecReport,
    /// Whether planning was answered from the cache.
    pub cache_hit: bool,
    /// The backend the world executed on.
    pub backend: ExecBackend,
}

/// The server's answer to one [`JobRequest`].
#[derive(Debug)]
pub struct JobResult {
    /// The request's id.
    pub id: u64,
    /// The served output, or the typed planning/execution failure.
    pub outcome: Result<JobOutput, PlanError>,
    /// Executions this job consumed: 1 for a clean run, more when the
    /// [`RetryPolicy`] recovered from injected faults, 0 when the job was
    /// aborted before it ever ran (server shutdown, dead drivers).
    pub attempts: usize,
    /// Whether recovery shrank the world: the job completed on fewer ranks
    /// than requested (p′ < p after dropping the casualties).
    pub degraded: bool,
}

/// Final accounting from [`Server::shutdown`].
#[derive(Debug)]
pub struct ShutdownReport {
    /// Plan-cache counters at shutdown.
    pub cache: CacheStats,
    /// Every result the caller had not yet [`recv`](Server::recv)ed, in
    /// ascending id order: completed jobs verbatim, and one typed
    /// [`PlanError::Aborted`] result per job that was still queued — the
    /// queue is never silently dropped.
    pub undelivered: Vec<JobResult>,
}

/// Sizing knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Driver threads consuming the job queue (concurrent jobs in flight).
    pub drivers: usize,
    /// Runnable-rank slots of the shared [`SchedulerPool`].
    pub pool_workers: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Plan-cache capacity (plans, across all shards).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
        ServerConfig {
            drivers: cores.div_ceil(2).max(2),
            pool_workers: cores,
            cache_shards: 16,
            cache_capacity: 1024,
        }
    }
}

struct Shared {
    planner: AutoPlanner,
    cache: PlanCache,
    pool: SchedulerPool,
}

/// The serving front door: submit [`JobRequest`]s, receive [`JobResult`]s.
///
/// ```
/// use cosma::problem::MmmProblem;
/// use densemat::matrix::Matrix;
/// use serve::{JobRequest, Server, ServerConfig};
///
/// let config = ServerConfig { drivers: 1, ..ServerConfig::default() };
/// let server = Server::new(baselines::registry(), config).unwrap();
/// let prob = MmmProblem::new(32, 32, 32, 4, 1 << 12);
/// let a = Matrix::deterministic(prob.m, prob.k, 1);
/// let b = Matrix::deterministic(prob.k, prob.n, 2);
/// let results = server.run_batch(vec![
///     JobRequest::new(0, prob, a.clone(), b.clone()),
///     JobRequest::new(1, prob, a, b), // same key: plans once
/// ]);
/// assert!(results.iter().all(|r| r.outcome.is_ok()));
/// assert_eq!(server.cache_stats().hits, 1);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    jobs_tx: Option<Sender<JobRequest>>,
    // The server's own clone of the result sender: lets `submit` synthesize
    // a typed result when every driver thread has died, so batch callers
    // still get one result per request instead of hanging on `recv`.
    results_tx: Option<Sender<JobResult>>,
    results_rx: Mutex<Receiver<JobResult>>,
    shutting: Arc<AtomicBool>,
    drivers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn a server over `registry` with `config.drivers` driver threads.
    ///
    /// # Errors
    /// [`ExecError::NoWorkers`] when `config.pool_workers` is zero.
    ///
    /// # Panics
    /// Panics when `config.drivers`, `config.cache_shards` or
    /// `config.cache_capacity` is zero.
    pub fn new(registry: AlgorithmRegistry, config: ServerConfig) -> Result<Self, ExecError> {
        assert!(config.drivers > 0, "the server needs at least one driver thread");
        let shared = Arc::new(Shared {
            planner: AutoPlanner::new(registry),
            cache: PlanCache::new(config.cache_shards, config.cache_capacity),
            pool: SchedulerPool::new(config.pool_workers)?,
        });
        let (jobs_tx, jobs_rx) = mpsc::channel::<JobRequest>();
        let (results_tx, results_rx) = mpsc::channel::<JobResult>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let shutting = Arc::new(AtomicBool::new(false));
        let drivers = (0..config.drivers)
            .map(|i| {
                let shared = shared.clone();
                let jobs_rx = jobs_rx.clone();
                let results_tx = results_tx.clone();
                let shutting = shutting.clone();
                std::thread::Builder::new()
                    .name(format!("serve-driver-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the dequeue; waiting
                        // drivers queue up on the mutex, which is the same
                        // as waiting for a job.
                        let job = match jobs_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(job) => job,
                            Err(_) => break, // queue closed and drained
                        };
                        let id = job.id;
                        let result = if shutting.load(Ordering::SeqCst) {
                            // Shutdown drain: the queue's leftover jobs
                            // become typed results, never silent drops.
                            aborted(id, "server shut down with the job still queued", 0)
                        } else {
                            // A panicking job (bad operands, a planner bug)
                            // must cost that job its result, not the whole
                            // driver thread — later jobs still get served.
                            std::panic::catch_unwind(AssertUnwindSafe(|| serve_job(&shared, job)))
                                .unwrap_or_else(|_| aborted(id, "job panicked inside the driver", 1))
                        };
                        if results_tx.send(result).is_err() {
                            break; // receiver gone: server dropped mid-flight
                        }
                    })
                    .expect("spawn serve driver")
            })
            .collect();
        Ok(Server {
            shared,
            jobs_tx: Some(jobs_tx),
            results_tx: Some(results_tx),
            results_rx: Mutex::new(results_rx),
            shutting,
            drivers,
        })
    }

    /// Enqueue a job; some driver thread will pick it up. Results arrive in
    /// *completion* order via [`recv`](Self::recv), not submission order.
    ///
    /// If every driver thread has died (each one caught a panic it could
    /// not attribute to a job), the job is answered immediately with a
    /// typed [`PlanError::Aborted`] result instead of hanging the queue.
    pub fn submit(&self, job: JobRequest) {
        let id = job.id;
        let undeliverable = self
            .jobs_tx
            .as_ref()
            .expect("server accepts jobs until shutdown")
            .send(job)
            .is_err();
        if undeliverable {
            if let Some(tx) = self.results_tx.as_ref() {
                let _ = tx.send(aborted(id, "no live driver threads to serve the job", 0));
            }
        }
    }

    /// Block for the next finished job. `None` only after
    /// [`shutdown`](Self::shutdown) semantics kick in (never while the
    /// server can still produce results).
    pub fn recv(&self) -> Option<JobResult> {
        self.results_rx.lock().unwrap_or_else(|e| e.into_inner()).recv().ok()
    }

    /// Submit `jobs` and collect exactly one result per job, returned in
    /// ascending id order (execution itself is concurrent and completes in
    /// arbitrary order).
    pub fn run_batch(&self, jobs: Vec<JobRequest>) -> Vec<JobResult> {
        let n = jobs.len();
        for job in jobs {
            self.submit(job);
        }
        let mut results: Vec<JobResult> = (0..n)
            .map(|_| self.recv().expect("drivers return one result per job"))
            .collect();
        results.sort_by_key(|r| r.id);
        results
    }

    /// Serve one job synchronously on the caller's thread (same pipeline,
    /// no queue) — the serial reference path.
    pub fn run_sync(&self, job: JobRequest) -> JobResult {
        serve_job(&self.shared, job)
    }

    /// Plan-cache counters at this instant.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The shared scheduler pool (e.g. to co-schedule work outside the
    /// server under the same worker cap).
    pub fn pool(&self) -> &SchedulerPool {
        &self.shared.pool
    }

    /// Buffer-arena counters of the shared scheduler pool. Every
    /// blocking-backend world this server runs leases scratch from one warm
    /// arena and parks it back on completion, so across a stream of jobs the
    /// hit rate climbs: later jobs multiply in earlier jobs' buffers instead
    /// of reallocating per request. Display-only observability — recycling
    /// never changes results or per-rank counters.
    pub fn arena_stats(&self) -> PoolStats {
        self.shared.pool.arena().stats()
    }

    /// Stop accepting jobs, drain the driver threads, and account for every
    /// job: results already computed come back verbatim in
    /// [`ShutdownReport::undelivered`], and jobs still queued come back as
    /// typed [`PlanError::Aborted`] results — `run_batch`-style callers get
    /// exactly one result per request, shutdown or not. In-flight jobs run
    /// to completion first.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.close();
        let mut undelivered: Vec<JobResult> = {
            let rx = self.results_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.try_iter().collect()
        };
        undelivered.sort_by_key(|r| r.id);
        ShutdownReport {
            cache: self.shared.cache.stats(),
            undelivered,
        }
    }

    fn close(&mut self) {
        // Flag first, then close the queue: drivers that dequeue after this
        // point convert the job to a typed aborted result instead of
        // serving it, so shutdown is prompt even with a deep queue.
        self.shutting.store(true, Ordering::SeqCst);
        drop(self.jobs_tx.take()); // closes the queue: drivers drain and exit
        for h in self.drivers.drain(..) {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        // Drop our result-sender clone so `recv` (and the shutdown drain)
        // observe a closed channel once the drivers are gone.
        drop(self.results_tx.take());
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

/// A typed "this job never completed" result.
fn aborted(id: u64, reason: &'static str, attempts: usize) -> JobResult {
    JobResult {
        id,
        outcome: Err(PlanError::Aborted { reason }),
        attempts,
        degraded: false,
    }
}

/// The serving pipeline for one job: cached planning, execution, and —
/// under a [`RetryPolicy`] — survivor replanning when injected faults fell
/// the world.
fn serve_job(shared: &Shared, job: JobRequest) -> JobResult {
    let id = job.id;
    let mut p = job.prob.p;
    let mut faults = job.faults;
    let mut attempts = 0;
    let mut degraded = false;
    loop {
        attempts += 1;
        let outcome = serve_attempt(shared, &job, p, faults);
        let rank_failed = matches!(
            outcome,
            Err(PlanError::Execution {
                source: ExecError::RankFailed { .. }
            })
        );
        if rank_failed && attempts < job.retry.max_attempts {
            if let Some(plan) = faults.take() {
                // Recovery: shrink the world to the survivors (COSMA's grid
                // fitting handles any p′, power of two or not) and re-run
                // *clean* — a retry must not re-inject the faults it is
                // recovering from. A pure message-loss failure keeps p′ = p:
                // same world, no drops this time.
                let survivors = plan.survivors(p);
                if survivors > 0 {
                    degraded |= survivors < p;
                    p = survivors;
                    if !job.retry.backoff.is_zero() {
                        std::thread::sleep(job.retry.backoff);
                    }
                    continue;
                }
            }
        }
        return JobResult {
            id,
            outcome,
            attempts,
            degraded,
        };
    }
}

/// One execution attempt at world size `p` (the job's own `p`, or the
/// survivor count after a recovery step) with `faults` armed or not.
fn serve_attempt(
    shared: &Shared,
    job: &JobRequest,
    p: usize,
    faults: Option<FaultPlan>,
) -> Result<JobOutput, PlanError> {
    let model = job.model.unwrap_or_else(CostModel::piz_daint_two_sided);
    // A shrunken world is a fresh problem with its own PlanKey, so a failed
    // world's replan lands in a different cache slot — the p-rank entry is
    // never poisoned by the failure (and stays warm for clean requests).
    let prob = if p == job.prob.p {
        job.prob
    } else {
        MmmProblem::new(job.prob.m, job.prob.n, job.prob.k, p, job.prob.mem_words)
    };
    let key = PlanKey::try_new(
        &prob,
        &model,
        job.overlap,
        job.mem_budget,
        &job.choice,
        &job.topology,
        job.placement,
    )?;
    let (planned, cache_hit) = shared
        .cache
        .get_or_try_insert_with(key, || shared.planner.select(&prob, &model, job.overlap, &job.choice))?;
    // Fault plans are an event-scheduler feature: when one is armed and no
    // explicit backend was pinned, route the job (and its recovery re-runs,
    // for comparable virtual clocks) to the event backend — blocking
    // backends ignore the plan entirely.
    let backend = match job.backend {
        Some(explicit) => explicit,
        None if job.faults.is_some() => ExecBackend::event(),
        None => ExecBackend::auto(p),
    };
    let mut session = RunSession::new(prob)
        .registry(shared.planner.registry().clone())
        .algorithm(planned.selection.algo)
        .machine(model)
        .overlap(job.overlap)
        .topology(job.topology.clone())
        .placement(job.placement)
        .exec_backend(backend);
    if let Some(words) = job.mem_budget {
        session = session.mem_budget(words);
    }
    if let Some(plan) = faults {
        session = session.faults(plan);
    }
    let report = match backend {
        // An event world is one single-threaded simulation; driver
        // threads interleave many of them.
        ExecBackend::Event { .. } => session.execute_planned(&planned.plan, &job.a, &job.b)?,
        // Blocking worlds take their runnable slots from the shared
        // pool, so concurrent jobs respect one machine-wide cap.
        ExecBackend::Threaded | ExecBackend::Sharded { .. } => {
            session.execute_planned_pooled(&planned.plan, &shared.pool, &job.a, &job.b)?
        }
    };
    Ok(JobOutput {
        selection: planned.selection.clone(),
        plan: planned.plan.clone(),
        report,
        cache_hit,
        backend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma::api::AlgoId;

    fn small_config() -> ServerConfig {
        ServerConfig {
            drivers: 3,
            pool_workers: 4,
            cache_shards: 4,
            cache_capacity: 64,
        }
    }

    fn job(id: u64, p: usize, seed: u64) -> JobRequest {
        let prob = MmmProblem::new(24, 20, 28, p, 1 << 12);
        let a = Matrix::deterministic(prob.m, prob.k, seed);
        let b = Matrix::deterministic(prob.k, prob.n, seed + 1);
        JobRequest::new(id, prob, a, b)
    }

    #[test]
    fn batch_results_match_sync_runs_bitwise() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let jobs: Vec<JobRequest> = (0..12).map(|i| job(i, [4, 6, 8][i as usize % 3], i)).collect();
        let results = server.run_batch(jobs.clone());
        assert_eq!(results.len(), jobs.len());
        for (job, result) in jobs.into_iter().zip(results) {
            assert_eq!(job.id, result.id);
            let concurrent = result.outcome.unwrap();
            let serial = server.run_sync(job).outcome.unwrap();
            assert_eq!(concurrent.report.c, serial.report.c, "bitwise product");
            assert_eq!(concurrent.report.stats, serial.report.stats);
            assert_eq!(concurrent.selection, serial.selection);
            assert_eq!(*concurrent.plan, *serial.plan);
        }
    }

    #[test]
    fn repeat_keys_hit_the_cache() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        // 9 jobs over 3 distinct keys (ids differ, keys repeat).
        let jobs: Vec<JobRequest> = (0..9).map(|i| job(i, [4, 6, 8][i as usize % 3], i % 3)).collect();
        let results = server.run_batch(jobs);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        let report = server.shutdown();
        assert!(report.undelivered.is_empty(), "batch already collected every result");
        let stats = report.cache;
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.hits + stats.misses, 9);
        assert!(stats.hits >= 6, "at least the 6 repeats hit; got {stats:?}");
    }

    #[test]
    fn infeasible_job_fails_typed_while_others_succeed() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        // p = 6 cannot serve Cannon (not a perfect square).
        let bad = job(0, 6, 0).choice(AlgoChoice::Fixed(AlgoId::Cannon));
        let good = job(1, 6, 1);
        let results = server.run_batch(vec![bad, good]);
        assert!(matches!(
            results[0].outcome,
            Err(PlanError::UnsupportedRanks {
                algo: AlgoId::Cannon,
                ..
            })
        ));
        let out = results[1].outcome.as_ref().unwrap();
        assert!(!matches!(out.selection.algo, AlgoId::Cannon | AlgoId::Carma));
    }

    #[test]
    fn event_and_blocking_jobs_interleave_and_agree() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let blocking = job(0, 8, 3);
        let event = job(1, 8, 3).backend(ExecBackend::event());
        let results = server.run_batch(vec![blocking, event]);
        let a = results[0].outcome.as_ref().unwrap();
        let b = results[1].outcome.as_ref().unwrap();
        assert_eq!(a.backend, ExecBackend::Threaded, "auto for p = 8");
        assert_eq!(b.backend, ExecBackend::event());
        assert_eq!(a.report.c, b.report.c, "backends agree bitwise");
        // Counters agree too; only the event backend measures virtual time.
        for (x, y) in a.report.stats.iter().zip(&b.report.stats) {
            assert_eq!(x.sans_time(), y.sans_time());
        }
    }

    #[test]
    fn mem_budget_violations_surface_per_job() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let mut strict = job(0, 4, 0);
        strict.mem_budget = Some(1);
        let results = server.run_batch(vec![strict]);
        assert!(matches!(
            results[0].outcome,
            Err(PlanError::Execution {
                source: ExecError::MemBudgetExceeded { .. }
            })
        ));
    }

    #[test]
    fn clean_jobs_report_one_attempt_and_no_degradation() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let result = server.run_sync(job(0, 4, 0));
        assert!(result.outcome.is_ok());
        assert_eq!(result.attempts, 1);
        assert!(!result.degraded);
    }

    #[test]
    fn injected_fault_without_retry_surfaces_rank_failed() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        // Horizon from a clean clocked run, so the deaths land mid-run.
        let clean = server.run_sync(job(0, 8, 3).backend(ExecBackend::event()));
        let t = clean.outcome.unwrap().report.measured_time_s();
        assert!(t > 0.0);
        let plan = FaultPlan::new(11).kill_exactly(2, t / 2.0);
        let result = server.run_sync(job(1, 8, 3).faults(plan));
        assert!(
            matches!(
                result.outcome,
                Err(PlanError::Execution {
                    source: ExecError::RankFailed { .. }
                })
            ),
            "{:?}",
            result.outcome
        );
        assert_eq!(result.attempts, 1);
        assert!(!result.degraded);
    }

    #[test]
    fn retry_policy_recovers_by_replanning_the_survivors() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let clean = server.run_sync(job(0, 8, 3).backend(ExecBackend::event()));
        let t = clean.outcome.unwrap().report.measured_time_s();
        let plan = FaultPlan::new(11).kill_exactly(2, t / 2.0);
        assert_eq!(plan.survivors(8), 6);
        let result = server.run_sync(job(1, 8, 3).faults(plan).retry(RetryPolicy::attempts(3)));
        let out = result.outcome.expect("recovery must complete the job");
        assert_eq!(result.attempts, 2, "one failure, one clean re-run");
        assert!(result.degraded, "the world shrank to the survivors");
        assert_eq!(out.plan.problem.p, 6, "replanned for p′ = 6");
        // The degraded product is still the product: bitwise-equal to a
        // fresh 6-rank run of the same operands.
        let fresh = server.run_sync(job(2, 6, 3).backend(ExecBackend::event()));
        assert_eq!(out.report.c, fresh.outcome.unwrap().report.c);
    }

    #[test]
    fn warm_arena_recycles_buffers_across_jobs() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        // CARMA's streaming executor leases every leaf buffer from the
        // arena, so it exercises the pool on the blocking (pooled) path.
        let carma = |id, seed| job(id, 4, seed).choice(AlgoChoice::Fixed(AlgoId::Carma));
        let first = server.run_sync(carma(0, 0));
        assert!(first.outcome.is_ok());
        let cold = server.arena_stats();
        assert!(cold.returns > 0, "the first job must park buffers in the shared arena");
        let second = server.run_sync(carma(1, 0));
        assert!(second.outcome.is_ok());
        let warm = server.arena_stats();
        assert!(
            warm.hits > cold.hits,
            "the second job must recycle the first job's buffers: {cold} then {warm}"
        );
        // And the warm-arena product is the same product.
        assert_eq!(
            first.outcome.unwrap().report.c,
            second.outcome.unwrap().report.c,
            "recycling is invisible to results"
        );
    }

    #[test]
    fn shutdown_accounts_for_every_queued_job() {
        // One driver, a slow job at the head of the queue, then a pile of
        // queued jobs: immediate shutdown must hand back one result per
        // submission — the in-flight job served, the rest typed aborts.
        let config = ServerConfig {
            drivers: 1,
            ..small_config()
        };
        let server = Server::new(baselines::registry(), config).unwrap();
        let n = 8;
        let heavy = {
            let prob = MmmProblem::new(96, 96, 96, 16, 1 << 14);
            let a = Matrix::deterministic(prob.m, prob.k, 1);
            let b = Matrix::deterministic(prob.k, prob.n, 2);
            JobRequest::new(0, prob, a, b).backend(ExecBackend::event())
        };
        server.submit(heavy);
        for i in 1..n {
            server.submit(job(i, 4, i));
        }
        let report = server.shutdown();
        assert_eq!(report.undelivered.len(), n as usize, "one result per submitted job");
        for (i, r) in report.undelivered.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            match &r.outcome {
                Ok(_) => {}
                Err(PlanError::Aborted { .. }) => assert_eq!(r.attempts, 0),
                other => panic!("job {i}: expected served or aborted, got {other:?}"),
            }
        }
        assert!(
            report
                .undelivered
                .iter()
                .any(|r| matches!(r.outcome, Err(PlanError::Aborted { .. }))),
            "with one driver busy on the heavy job, queued jobs must be aborted"
        );
    }

    #[test]
    fn panicking_job_costs_its_result_not_the_driver() {
        let config = ServerConfig {
            drivers: 1,
            ..small_config()
        };
        let server = Server::new(baselines::registry(), config).unwrap();
        // Operand shape contradicts the problem statement: the rank bodies
        // index out of bounds and panic. The driver must catch it, type it,
        // and keep serving.
        let poison = {
            let prob = MmmProblem::new(24, 20, 28, 4, 1 << 12);
            JobRequest::new(0, prob, Matrix::deterministic(2, 2, 1), Matrix::deterministic(2, 2, 2))
        };
        let results = server.run_batch(vec![poison, job(1, 4, 5)]);
        assert!(matches!(results[0].outcome, Err(PlanError::Aborted { .. })), "{:?}", results[0].outcome);
        assert!(results[1].outcome.is_ok(), "the driver survived to serve the next job");
    }
}
