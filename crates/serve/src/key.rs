//! Canonical cache keys for memoized planning.
//!
//! Planning is pure: a `DistPlan` is fully determined by the problem
//! `(m, n, k, p, S)`, the α-β-γ cost model, the overlap mode, the machine's
//! topology/placement and — through the auto-planner — the candidate set. A
//! [`PlanKey`] is that tuple in canonical form. Float fields are keyed by
//! **bit pattern** ([`f64::to_bits`]) after canonicalization: `-0.0`
//! normalizes to `0.0` (they plan identically, so they must share a cache
//! slot) and NaN parameters are rejected with a typed
//! [`PlanError::NonFiniteCostModel`] — a NaN would otherwise silently key a
//! cache entry no equal-looking request could ever hit again.

use cosma::api::PlanError;
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;
use mpsim::machine::{Placement, Topology};

use crate::auto::AlgoChoice;

/// The canonical bit pattern of one machine parameter: `-0.0` folds into
/// `0.0`, NaN is a typed error naming the parameter. Infinities keep their
/// bit patterns — they are well-ordered, so two infinite-β requests
/// legitimately share a key.
fn canonical_bits(v: f64, field: &'static str) -> Result<u64, PlanError> {
    if v.is_nan() {
        return Err(PlanError::NonFiniteCostModel { field });
    }
    Ok(if v == 0.0 { 0.0f64.to_bits() } else { v.to_bits() })
}

/// Fixed-width encoding of a [`Topology`]: discriminant + packed parameters.
/// Dims of a torus pack 16 bits each (validation caps them at 4 dims; a
/// dimension above 65535 nodes is beyond any plan this crate serves).
fn encode_topology(t: &Topology) -> Result<(u8, [u64; 4]), PlanError> {
    Ok(match t {
        Topology::Flat => (0, [0; 4]),
        Topology::NodeNic {
            ranks_per_node,
            nic_factor,
        } => (
            1,
            [
                *ranks_per_node as u64,
                canonical_bits(*nic_factor, "nic_factor")?,
                0,
                0,
            ],
        ),
        Topology::FatTree {
            ranks_per_node,
            nodes_per_switch,
            nic_factor,
            up_factor,
        } => (
            2,
            [
                ((*ranks_per_node as u64) << 32) | *nodes_per_switch as u64,
                canonical_bits(*nic_factor, "nic_factor")?,
                canonical_bits(*up_factor, "up_factor")?,
                0,
            ],
        ),
        Topology::Torus {
            ranks_per_node,
            dims,
            link_factor,
        } => {
            let mut packed = 0u64;
            for (i, &d) in dims.iter().enumerate() {
                packed |= (d.min(0xFFFF) as u64) << (16 * i);
            }
            (
                3,
                [
                    *ranks_per_node as u64,
                    packed,
                    canonical_bits(*link_factor, "link_factor")?,
                    dims.len() as u64,
                ],
            )
        }
    })
}

/// Canonical identity of one planning request. `Eq + Hash`, so it keys the
/// [`PlanCache`](crate::cache::PlanCache) map directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Rows of A and C.
    pub m: u64,
    /// Columns of B and C.
    pub n: u64,
    /// Columns of A / rows of B.
    pub k: u64,
    /// World size.
    pub p: u64,
    /// Per-rank memory S, in words.
    pub mem_words: u64,
    /// [`CostModel::peak_flops`] as its canonical bit pattern.
    pub peak_flops_bits: u64,
    /// [`CostModel::kernel_efficiency`] as its canonical bit pattern.
    pub kernel_efficiency_bits: u64,
    /// [`CostModel::alpha_s`] as its canonical bit pattern.
    pub alpha_bits: u64,
    /// [`CostModel::beta_s_per_word`] as its canonical bit pattern.
    pub beta_bits: u64,
    /// Communication–computation overlap mode (changes the planned-time
    /// objective the auto-planner minimizes).
    pub overlap: bool,
    /// Enforced per-rank memory budget, when set.
    pub mem_budget: Option<u64>,
    /// The allowed algorithms as a bitmask over
    /// [`AlgoId::ALL`](cosma::api::AlgoId::ALL) positions
    /// ([`AlgoChoice::mask`]).
    pub candidates: u8,
    /// [`Topology`] discriminant (0 = flat, 1 = node/NIC, 2 = fat-tree,
    /// 3 = torus) — cached plans must never cross machine shapes.
    pub topology_tag: u8,
    /// The topology's packed parameters (counts and canonical factor bits).
    pub topology_bits: [u64; 4],
    /// Rank→node [`Placement`] discriminant (0 = block, 1 = round-robin).
    pub placement: u8,
}

impl PlanKey {
    /// The canonical key of a planning request, or
    /// [`PlanError::NonFiniteCostModel`] when a cost-model constant or
    /// topology factor is NaN.
    pub fn try_new(
        prob: &MmmProblem,
        model: &CostModel,
        overlap: bool,
        mem_budget: Option<u64>,
        choice: &AlgoChoice,
        topology: &Topology,
        placement: Placement,
    ) -> Result<Self, PlanError> {
        let (topology_tag, topology_bits) = encode_topology(topology)?;
        Ok(PlanKey {
            m: prob.m as u64,
            n: prob.n as u64,
            k: prob.k as u64,
            p: prob.p as u64,
            mem_words: prob.mem_words as u64,
            peak_flops_bits: canonical_bits(model.peak_flops, "peak_flops")?,
            kernel_efficiency_bits: canonical_bits(model.kernel_efficiency, "kernel_efficiency")?,
            alpha_bits: canonical_bits(model.alpha_s, "alpha_s")?,
            beta_bits: canonical_bits(model.beta_s_per_word, "beta_s_per_word")?,
            overlap,
            mem_budget,
            candidates: choice.mask(),
            topology_tag,
            topology_bits,
            placement: match placement {
                Placement::Block => 0,
                Placement::RoundRobin => 1,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma::api::AlgoId;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn key(
        prob: &MmmProblem,
        model: &CostModel,
        overlap: bool,
        mem_budget: Option<u64>,
        choice: &AlgoChoice,
    ) -> PlanKey {
        PlanKey::try_new(prob, model, overlap, mem_budget, choice, &Topology::Flat, Placement::Block)
            .expect("finite model")
    }

    fn hash_of(key: &PlanKey) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    #[test]
    fn same_request_same_key() {
        let prob = MmmProblem::new(96, 80, 112, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let a = key(&prob, &model, true, None, &AlgoChoice::Auto);
        let b = key(&prob, &model, true, None, &AlgoChoice::Auto);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn every_field_distinguishes() {
        let prob = MmmProblem::new(96, 80, 112, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let base = key(&prob, &model, true, None, &AlgoChoice::Auto);
        let variants = [
            key(&MmmProblem::new(97, 80, 112, 16, 1 << 14), &model, true, None, &AlgoChoice::Auto),
            key(&MmmProblem::new(96, 80, 112, 32, 1 << 14), &model, true, None, &AlgoChoice::Auto),
            key(&MmmProblem::new(96, 80, 112, 16, 1 << 15), &model, true, None, &AlgoChoice::Auto),
            key(&prob, &CostModel::piz_daint_one_sided(), true, None, &AlgoChoice::Auto),
            key(&prob, &model, false, None, &AlgoChoice::Auto),
            key(&prob, &model, true, Some(1 << 14), &AlgoChoice::Auto),
            key(&prob, &model, true, None, &AlgoChoice::Fixed(AlgoId::Cosma)),
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn floats_key_by_bit_pattern_not_value_fuzz() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let mut warm = CostModel::piz_daint_two_sided();
        warm.alpha_s += f64::EPSILON * warm.alpha_s;
        let a = key(&prob, &CostModel::piz_daint_two_sided(), true, None, &AlgoChoice::Auto);
        let b = key(&prob, &warm, true, None, &AlgoChoice::Auto);
        assert_ne!(a, b, "one-ulp difference is a different key");
    }

    #[test]
    fn equivalent_choices_share_a_key() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let spelled = AlgoChoice::Among(vec![AlgoId::Carma, AlgoId::Cosma, AlgoId::Carma]);
        let canonical = AlgoChoice::Among(vec![AlgoId::Cosma, AlgoId::Carma]);
        assert_eq!(key(&prob, &model, true, None, &spelled), key(&prob, &model, true, None, &canonical),);
    }

    #[test]
    fn negative_zero_canonicalizes_to_zero() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let mut pos = CostModel::piz_daint_two_sided();
        pos.alpha_s = 0.0;
        let mut neg = pos;
        neg.alpha_s = -0.0;
        assert_ne!((-0.0f64).to_bits(), 0.0f64.to_bits(), "raw bits would fragment");
        assert_eq!(
            key(&prob, &pos, true, None, &AlgoChoice::Auto),
            key(&prob, &neg, true, None, &AlgoChoice::Auto),
            "-0.0 and 0.0 plan identically, so they must share a cache slot"
        );
    }

    #[test]
    fn nan_machine_parameter_is_a_typed_error() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let mut bad = CostModel::piz_daint_two_sided();
        bad.beta_s_per_word = f64::NAN;
        let err =
            PlanKey::try_new(&prob, &bad, true, None, &AlgoChoice::Auto, &Topology::Flat, Placement::Block)
                .unwrap_err();
        assert_eq!(
            err,
            PlanError::NonFiniteCostModel {
                field: "beta_s_per_word"
            }
        );
    }

    #[test]
    fn topology_and_placement_distinguish_keys() {
        let prob = MmmProblem::new(96, 80, 112, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let flat = key(&prob, &model, true, None, &AlgoChoice::Auto);
        let mk = |t: &Topology, pl: Placement| {
            PlanKey::try_new(&prob, &model, true, None, &AlgoChoice::Auto, t, pl).unwrap()
        };
        let fat = mk(&Topology::congested_fat_tree(), Placement::Block);
        let fat_rr = mk(&Topology::congested_fat_tree(), Placement::RoundRobin);
        let nic = mk(
            &Topology::NodeNic {
                ranks_per_node: 4,
                nic_factor: 1.0,
            },
            Placement::Block,
        );
        let torus = mk(
            &Topology::Torus {
                ranks_per_node: 4,
                dims: vec![2, 2],
                link_factor: 1.0,
            },
            Placement::Block,
        );
        assert_ne!(flat, fat, "cached plans must never cross machine shapes");
        assert_ne!(fat, fat_rr, "placement is part of the machine shape");
        assert_ne!(fat, nic);
        assert_ne!(nic, torus);
        // Distinct fat-tree factors are distinct shapes.
        let fat_tuned = mk(
            &Topology::FatTree {
                ranks_per_node: 4,
                nodes_per_switch: 4,
                nic_factor: 1.0,
                up_factor: 4.0,
            },
            Placement::Block,
        );
        assert_ne!(fat, fat_tuned);
    }

    #[test]
    fn torus_dims_order_matters() {
        let prob = MmmProblem::new(96, 80, 112, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let mk = |dims: Vec<usize>| {
            PlanKey::try_new(
                &prob,
                &model,
                true,
                None,
                &AlgoChoice::Auto,
                &Topology::Torus {
                    ranks_per_node: 1,
                    dims,
                    link_factor: 1.0,
                },
                Placement::Block,
            )
            .unwrap()
        };
        assert_ne!(mk(vec![4, 2]), mk(vec![2, 4]), "routing differs, so the key must");
    }
}
