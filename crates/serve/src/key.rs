//! Canonical cache keys for memoized planning.
//!
//! Planning is pure: a `DistPlan` is fully determined by the problem
//! `(m, n, k, p, S)`, the α-β-γ cost model, the overlap mode and — through
//! the auto-planner — the candidate set. A [`PlanKey`] is that tuple in
//! canonical form. Float fields are keyed by **bit pattern**
//! ([`f64::to_bits`]): two cost models are the same key exactly when they
//! are the same floats, with no epsilon fuzz and no NaN/−0.0 ambiguity in
//! `Eq`/`Hash`.

use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

use crate::auto::AlgoChoice;

/// Canonical identity of one planning request. `Eq + Hash`, so it keys the
/// [`PlanCache`](crate::cache::PlanCache) map directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Rows of A and C.
    pub m: u64,
    /// Columns of B and C.
    pub n: u64,
    /// Columns of A / rows of B.
    pub k: u64,
    /// World size.
    pub p: u64,
    /// Per-rank memory S, in words.
    pub mem_words: u64,
    /// [`CostModel::peak_flops`] as its IEEE-754 bit pattern.
    pub peak_flops_bits: u64,
    /// [`CostModel::kernel_efficiency`] as its bit pattern.
    pub kernel_efficiency_bits: u64,
    /// [`CostModel::alpha_s`] as its bit pattern.
    pub alpha_bits: u64,
    /// [`CostModel::beta_s_per_word`] as its bit pattern.
    pub beta_bits: u64,
    /// Communication–computation overlap mode (changes the planned-time
    /// objective the auto-planner minimizes).
    pub overlap: bool,
    /// Enforced per-rank memory budget, when set.
    pub mem_budget: Option<u64>,
    /// The allowed algorithms as a bitmask over
    /// [`AlgoId::ALL`](cosma::api::AlgoId::ALL) positions
    /// ([`AlgoChoice::mask`]).
    pub candidates: u8,
}

impl PlanKey {
    /// The canonical key of a planning request.
    pub fn new(
        prob: &MmmProblem,
        model: &CostModel,
        overlap: bool,
        mem_budget: Option<u64>,
        choice: &AlgoChoice,
    ) -> Self {
        PlanKey {
            m: prob.m as u64,
            n: prob.n as u64,
            k: prob.k as u64,
            p: prob.p as u64,
            mem_words: prob.mem_words as u64,
            peak_flops_bits: model.peak_flops.to_bits(),
            kernel_efficiency_bits: model.kernel_efficiency.to_bits(),
            alpha_bits: model.alpha_s.to_bits(),
            beta_bits: model.beta_s_per_word.to_bits(),
            overlap,
            mem_budget,
            candidates: choice.mask(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma::api::AlgoId;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(key: &PlanKey) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    #[test]
    fn same_request_same_key() {
        let prob = MmmProblem::new(96, 80, 112, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let a = PlanKey::new(&prob, &model, true, None, &AlgoChoice::Auto);
        let b = PlanKey::new(&prob, &model, true, None, &AlgoChoice::Auto);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn every_field_distinguishes() {
        let prob = MmmProblem::new(96, 80, 112, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let base = PlanKey::new(&prob, &model, true, None, &AlgoChoice::Auto);
        let variants = [
            PlanKey::new(&MmmProblem::new(97, 80, 112, 16, 1 << 14), &model, true, None, &AlgoChoice::Auto),
            PlanKey::new(&MmmProblem::new(96, 80, 112, 32, 1 << 14), &model, true, None, &AlgoChoice::Auto),
            PlanKey::new(&MmmProblem::new(96, 80, 112, 16, 1 << 15), &model, true, None, &AlgoChoice::Auto),
            PlanKey::new(&prob, &CostModel::piz_daint_one_sided(), true, None, &AlgoChoice::Auto),
            PlanKey::new(&prob, &model, false, None, &AlgoChoice::Auto),
            PlanKey::new(&prob, &model, true, Some(1 << 14), &AlgoChoice::Auto),
            PlanKey::new(&prob, &model, true, None, &AlgoChoice::Fixed(AlgoId::Cosma)),
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn floats_key_by_bit_pattern_not_value_fuzz() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let mut warm = CostModel::piz_daint_two_sided();
        warm.alpha_s += f64::EPSILON * warm.alpha_s;
        let a = PlanKey::new(&prob, &CostModel::piz_daint_two_sided(), true, None, &AlgoChoice::Auto);
        let b = PlanKey::new(&prob, &warm, true, None, &AlgoChoice::Auto);
        assert_ne!(a, b, "one-ulp difference is a different key");
    }

    #[test]
    fn equivalent_choices_share_a_key() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let spelled = AlgoChoice::Among(vec![AlgoId::Carma, AlgoId::Cosma, AlgoId::Carma]);
        let canonical = AlgoChoice::Among(vec![AlgoId::Cosma, AlgoId::Carma]);
        assert_eq!(
            PlanKey::new(&prob, &model, true, None, &spelled),
            PlanKey::new(&prob, &model, true, None, &canonical),
        );
    }
}
