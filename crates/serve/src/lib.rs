//! # serve — planning-as-a-service over the COSMA reproduction
//!
//! The serving layer in front of the planner/executor stack: requests come
//! in as [`JobRequest`]s, answers go out as [`JobResult`]s, and everything
//! in between is memoized, auto-selected and concurrently executed. COSMA's
//! planning (grid fitting over the divisors of `p`, paper fig. 5) is *pure*
//! — fully determined by `(m, n, k, p, S, machine)` — which is what makes a
//! serving layer sound: plans can be cached and shared, and concurrent
//! execution can never change an answer.
//!
//! Three pieces:
//!
//! * [`PlanCache`] — a sharded, bounded-LRU `PlanKey → Arc<Planned>` map.
//!   [`PlanKey`] is the canonical request identity: problem dims plus the
//!   α-β-γ cost model keyed by IEEE-754 **bit pattern**, overlap mode,
//!   memory budget and the allowed-algorithm mask. Hit/miss/eviction
//!   counters are atomic ([`CacheStats`]).
//! * [`AutoPlanner`] — runs a request through every candidate of the
//!   [`AlgorithmRegistry`](cosma::api::AlgorithmRegistry)
//!   (COSMA/SUMMA/Cannon/2.5D/CARMA), scores each feasible plan's
//!   `TimeBreakdown` under the cost model, and picks the strict argmin —
//!   fig. 5's grid fitting generalized across algorithms. The verdict is a
//!   typed [`Selection`] `{ algo, planned_time_s, runner_up }`.
//! * [`Server`] — the multi-tenant driver: a team of driver threads
//!   consumes the job queue; blocking worlds execute over one shared
//!   [`SchedulerPool`](mpsim::exec::SchedulerPool) (a machine-wide worker
//!   cap across *all* concurrent jobs), event worlds interleave. Per-job
//!   [`ExecReport`](cosma::api::ExecReport)s come back with the selection,
//!   the (possibly cached) plan and a cache-hit flag. Jobs may arm a
//!   deterministic [`FaultPlan`]; under a [`RetryPolicy`] the driver
//!   recovers from injected rank death by replanning the surviving world
//!   (see the `driver` module docs).
//!
//! ```
//! use cosma::problem::MmmProblem;
//! use densemat::matrix::Matrix;
//! use serve::{AlgoChoice, JobRequest, Server, ServerConfig};
//!
//! let server = Server::new(baselines::registry(), ServerConfig::default()).unwrap();
//! let prob = MmmProblem::new(48, 48, 48, 8, 1 << 12);
//! let a = Matrix::deterministic(prob.m, prob.k, 1);
//! let b = Matrix::deterministic(prob.k, prob.n, 2);
//! let results = server.run_batch(
//!     (0..4)
//!         .map(|id| JobRequest::new(id, prob, a.clone(), b.clone()).choice(AlgoChoice::Auto))
//!         .collect(),
//! );
//! let out = results[0].outcome.as_ref().unwrap();
//! println!("selected {} ({}s planned)", out.selection.algo, out.selection.planned_time_s);
//! assert!(server.cache_stats().hits >= 1, "repeat keys are served from the cache");
//! ```

pub mod auto;
pub mod cache;
pub mod driver;
pub mod key;

pub use auto::{AlgoChoice, AutoPlanner, Planned, Ranked, Selection};
pub use cache::{CacheStats, PlanCache};
pub use driver::{JobOutput, JobRequest, JobResult, RetryPolicy, Server, ServerConfig, ShutdownReport};
pub use key::PlanKey;
pub use mpsim::FaultPlan;
