//! Communication planner / advisor: for a given `m n k p S`, print each
//! algorithm's decomposition, per-rank traffic and modeled time, and pick a
//! winner — the "no hand tuning" promise of the paper as a tool.
//!
//! Every algorithm is planned through the same [`RunSession`] entry point
//! over the full [`baselines::registry`]; inapplicable rank counts surface
//! as typed [`PlanError`]s instead of being silently skipped.
//!
//! Run with: `cargo run --release --example comm_planner -- 4096 4096 4096 512 1000000`
//! (arguments optional; defaults shown).

use cosma::api::{PlanError, RunSession};
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("arguments must be positive integers: m n k p S"))
        .collect();
    let (m, n, k, p, s) = match args.as_slice() {
        [] => (4096, 4096, 4096, 512, 1_000_000),
        [m, n, k, p, s] => (*m, *n, *k, *p, *s),
        _ => {
            eprintln!("usage: comm_planner [m n k p S]");
            std::process::exit(2);
        }
    };
    let prob = MmmProblem::new(m, n, k, p, s);
    println!(
        "C = A·B with m={m} n={n} k={k} on p={p} ranks, S={s} words/rank (shape: {:?})\n",
        prob.shape()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10}  decomposition",
        "algorithm", "mean MB/rank", "max MB/rank", "time (ms)", "% peak"
    );

    let registry = baselines::registry();
    let mut results: Vec<(String, f64)> = Vec::new();
    for algo in registry.all() {
        let id = algo.id();
        let session = RunSession::new(prob)
            .machine(CostModel::piz_daint_two_sided())
            .registry(registry.clone())
            .algorithm(id);
        match session.run() {
            Ok(outcome) => {
                let pl = &outcome.plan;
                println!(
                    "{:<10} {:>14.2} {:>14.2} {:>12.2} {:>10.1}  {}x{}x{}",
                    id.to_string(),
                    pl.mean_comm_words() * 8.0 / 1e6,
                    pl.max_comm_words() as f64 * 8.0 / 1e6,
                    outcome.report.time_s * 1e3,
                    outcome.report.percent_peak,
                    pl.grid[0],
                    pl.grid[1],
                    pl.grid[2],
                );
                results.push((id.to_string(), outcome.report.time_s));
            }
            Err(e @ (PlanError::UnsupportedRanks { .. } | PlanError::NoFeasibleGrid)) => {
                println!("{:<10} {:>14} — {e}", id.to_string(), "-");
            }
            Err(e) => panic!("{id}: unexpected planning failure: {e}"),
        }
    }

    if let Some((best, t)) = results.iter().min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite")) {
        println!("\nrecommendation: {best} (modeled {:.2} ms)", t * 1e3);
    }
}
