//! Communication planner / advisor: for a given `m n k p S`, print each
//! algorithm's decomposition, per-rank traffic and modeled time, and pick a
//! winner — the "no hand tuning" promise of the paper as a tool.
//!
//! Run with: `cargo run --release --example comm_planner -- 4096 4096 4096 512 1000000`
//! (arguments optional; defaults shown).

use cosma::algorithm::{plan as cosma_plan, CosmaConfig};
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("arguments must be positive integers: m n k p S"))
        .collect();
    let (m, n, k, p, s) = match args.as_slice() {
        [] => (4096, 4096, 4096, 512, 1_000_000),
        [m, n, k, p, s] => (*m, *n, *k, *p, *s),
        _ => {
            eprintln!("usage: comm_planner [m n k p S]");
            std::process::exit(2);
        }
    };
    let prob = MmmProblem::new(m, n, k, p, s);
    let model = CostModel::piz_daint_two_sided();
    println!(
        "C = A·B with m={m} n={n} k={k} on p={p} ranks, S={s} words/rank (shape: {:?})\n",
        prob.shape()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>10}  decomposition",
        "algorithm", "mean MB/rank", "max MB/rank", "time (ms)", "% peak"
    );

    let mut results: Vec<(String, f64, String)> = Vec::new();
    let mut show = |name: &str, plan: Option<cosma::plan::DistPlan>, note: &str| {
        match plan {
            Some(pl) => {
                let rep = pl.simulate(&model, true);
                println!(
                    "{:<10} {:>14.2} {:>14.2} {:>12.2} {:>10.1}  {}x{}x{} {}",
                    name,
                    pl.mean_comm_words() * 8.0 / 1e6,
                    pl.max_comm_words() as f64 * 8.0 / 1e6,
                    rep.time_s * 1e3,
                    rep.percent_peak,
                    pl.grid[0],
                    pl.grid[1],
                    pl.grid[2],
                    note,
                );
                results.push((name.to_string(), rep.time_s, note.to_string()));
            }
            None => println!("{name:<10} {:>14} — not applicable {note}", "-"),
        }
    };

    show(
        "cosma",
        cosma_plan(&prob, &CosmaConfig::default(), &model).ok(),
        "",
    );
    show("summa", baselines::summa::plan(&prob).ok(), "(ScaLAPACK-style 2D)");
    show("cannon", baselines::cannon::plan(&prob).ok(), "(needs square p)");
    show("p25d", baselines::p25d::plan(&prob).ok(), "(CTF-style)");
    show("carma", baselines::carma::plan(&prob).ok(), "(needs p = 2^x)");

    if let Some((best, t, _)) = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
    {
        println!("\nrecommendation: {best} (modeled {:.2} ms)", t * 1e3);
    }
}
