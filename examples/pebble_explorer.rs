//! Red-blue pebble game walkthrough: generate the near-optimal greedy MMM
//! schedule (Listing 1 of the paper), validate it move by move, and compare
//! its measured I/O against Theorem 1's lower bound and — on a tiny
//! instance — the certified exhaustive optimum.
//!
//! Run with: `cargo run --release --example pebble_explorer`

use pebbles::bounds::{best_engine_tile, theorem1_lower_bound, tightness_factor};
use pebbles::game::validate_complete;
use pebbles::greedy::{near_optimal_moves, tiled_capacity, tiled_moves};
use pebbles::mmm::MmmCdag;
use pebbles::optimal::{min_io_exhaustive, SearchResult};

fn main() {
    // --- Greedy schedules on a mid-size CDAG across memory sizes ---
    let (m, n, k) = (24, 24, 12);
    let g = MmmCdag::new(m, n, k);
    println!("MMM CDAG {m}x{n}x{k}: {} vertices", g.len());
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>8} {:>9}",
        "S", "tile", "measured Q", "Theorem 1", "ratio", "√S/(√(S+1)-1)"
    );
    for s in [16usize, 36, 64, 100, 196] {
        let (a, b) = best_engine_tile(s);
        let (moves, _, _) = near_optimal_moves(&g, s);
        let io = validate_complete(g.graph(), s, &moves).expect("legal schedule");
        let lb = theorem1_lower_bound(m, n, k, s);
        println!(
            "{s:>6} {:>9} {io:>12} {lb:>12.0} {:>8.3} {:>9.3}",
            format!("{a}x{b}"),
            io as f64 / lb,
            tightness_factor(s)
        );
    }
    println!("(the ratio column approaches the paper's attainability factor as S grows)\n");

    // --- Exhaustive optimum on a tiny instance ---
    let tiny = MmmCdag::new(2, 2, 1);
    let s = 4;
    let lb = theorem1_lower_bound(2, 2, 1, s);
    let moves = tiled_moves(&tiny, 2, 2);
    let greedy = validate_complete(tiny.graph(), tiled_capacity(2, 2), &moves).expect("legal");
    match min_io_exhaustive(tiny.graph(), s, 5_000_000) {
        SearchResult::Optimal(opt) => {
            println!("2x2x1 MMM with S = {s}:");
            println!("  Theorem 1 bound: {lb:.0}");
            println!("  exhaustive optimum (certified): {opt}");
            println!("  greedy tiled schedule: {greedy}");
            assert!(opt as f64 >= lb && opt <= greedy);
            println!("  bound ≤ optimum ≤ greedy ✓ — the bound is *tight* here");
        }
        other => println!("search did not finish: {other:?}"),
    }
}
