//! Quickstart: multiply two matrices with COSMA on a simulated 16-rank
//! machine through the [`RunSession`] API, verify against the sequential
//! kernel, and inspect the traffic.
//!
//! Run with: `cargo run --release --example quickstart`

use cosma::api::{AlgoId, RunSession};
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;

fn main() {
    // C = A·B with A: 96x128, B: 128x80 on 16 ranks with 4096 words each.
    let prob = MmmProblem::new(96, 80, 128, 16, 4096);
    let session = RunSession::new(prob)
        .machine(CostModel::piz_daint_two_sided())
        .algorithm(AlgoId::Cosma);

    // 1. Plan + execute in one call: the session builds the near-I/O-optimal
    // schedule (Algorithm 1 of the paper), validates it structurally, runs
    // it on the simulated machine with real messages, assembles C from the
    // distributed shares, and verifies both the product (against the
    // sequential kernel) and the traffic (against the plan).
    let a = Matrix::deterministic(prob.m, prob.k, 1);
    let b = Matrix::deterministic(prob.k, prob.n, 2);
    let (plan, report) = session.execute_verified(&a, &b).expect("feasible problem");
    println!(
        "COSMA grid: {}x{}x{} ({} of {} ranks active)",
        plan.grid[0],
        plan.grid[1],
        plan.grid[2],
        plan.active_ranks(),
        prob.p
    );
    println!("product verified against the sequential kernel ✓");

    // 2. The mpiP-style numbers: measured == planned, rank by rank.
    println!("\nrank  recv words (measured)  recv words (planned)");
    for (r, st) in report.stats.iter().enumerate() {
        println!("{r:>4}  {:>21}  {:>20}", st.total_recv(), plan.ranks[r].comm_words());
    }

    // 3. Cost-model view of the same plan: simulated time and % of peak.
    let rep = plan.simulate(&session.cost_model(), true);
    println!(
        "\nsimulated time {:.3} ms, {:.1}% of machine peak (overlap on)",
        rep.time_s * 1e3,
        rep.percent_peak
    );
}
