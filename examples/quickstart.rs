//! Quickstart: multiply two matrices with COSMA on a simulated 16-rank
//! machine, verify against the sequential kernel, and inspect the traffic.
//!
//! Run with: `cargo run --release --example quickstart`

use cosma::algorithm::{assemble_c, execute, plan, CosmaConfig};
use cosma::problem::MmmProblem;
use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::run_spmd;
use mpsim::machine::MachineSpec;

fn main() {
    // C = A·B with A: 96x128, B: 128x80 on 16 ranks with 4096 words each.
    let prob = MmmProblem::new(96, 80, 128, 16, 4096);
    let cfg = CosmaConfig::default();
    let model = CostModel::piz_daint_two_sided();

    // 1. Plan: near-I/O-optimal schedule (Algorithm 1 of the paper).
    let dplan = plan(&prob, &cfg, &model).expect("feasible problem");
    dplan.validate().expect("structurally valid plan");
    println!(
        "COSMA grid: {}x{}x{} ({} of {} ranks active)",
        dplan.grid[0],
        dplan.grid[1],
        dplan.grid[2],
        dplan.active_ranks(),
        prob.p
    );

    // 2. Execute on the simulated machine with real messages.
    let a = Matrix::deterministic(prob.m, prob.k, 1);
    let b = Matrix::deterministic(prob.k, prob.n, 2);
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| execute(comm, &dplan, &cfg, &a, &b));

    // 3. Assemble and verify the product (C stays distributed in COSMA's
    // blocked layout; assemble_c recombines the shares).
    let c = assemble_c(out.results.into_iter().flatten(), prob.m, prob.n);
    let want = matmul(&a, &b);
    assert!(want.approx_eq(&c, 1e-9), "product mismatch");
    println!("product verified against the sequential kernel ✓");

    // 4. The mpiP-style numbers: measured == planned, rank by rank.
    println!("\nrank  recv words (measured)  recv words (planned)");
    for (r, st) in out.stats.iter().enumerate() {
        println!(
            "{r:>4}  {:>21}  {:>20}",
            st.total_recv(),
            dplan.ranks[r].comm_words()
        );
        assert_eq!(st.total_recv(), dplan.ranks[r].comm_words());
    }

    // 5. Cost-model view: simulated time and % of peak.
    let rep = dplan.simulate(&model, true);
    println!(
        "\nsimulated time {:.3} ms, {:.1}% of machine peak (overlap on)",
        rep.time_s * 1e3,
        rep.percent_peak
    );
}
