//! The paper's motivating production workload (§8): the matrix products of
//! RPA energy calculations for `w` water molecules, `m = n = 136·w`,
//! `k = 228·w²` — extremely "tall-and-skinny" (largeK).
//!
//! Small `w` is executed and verified on the threaded simulator; the paper's
//! `w = 128` (17,408 × 3,735,552) is planned at full scale and the per-rank
//! communication of COSMA vs the baselines is reported, reproducing the
//! strong-scaling setup of Figures 10–11.
//!
//! Run with: `cargo run --release --example rpa_water`

use cosma::algorithm::{assemble_c, execute, plan, CosmaConfig};
use cosma::problem::MmmProblem;
use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::run_spmd;
use mpsim::machine::MachineSpec;

fn main() {
    let cfg = CosmaConfig::default();
    let model = CostModel::piz_daint_two_sided();

    // --- Executed: w = 2 on 16 simulated ranks ---
    let small = MmmProblem::rpa_water(2, 16, 1 << 17);
    println!(
        "w = 2: m = n = {}, k = {} on {} ranks (executed)",
        small.m, small.n, small.k
    );
    let dplan = plan(&small, &cfg, &model).expect("plan");
    let a = Matrix::deterministic(small.m, small.k, 3);
    let b = Matrix::deterministic(small.k, small.n, 4);
    let spec = MachineSpec::piz_daint_with_memory(small.p, small.mem_words);
    let out = run_spmd(&spec, |comm| execute(comm, &dplan, &cfg, &a, &b));
    let c = assemble_c(out.results.into_iter().flatten(), small.m, small.n);
    assert!(matmul(&a, &b).approx_eq(&c, 1e-9));
    println!("  verified ✓  (grid {:?})\n", dplan.grid);

    // --- Planned at paper scale: w = 128, strong scaling ---
    println!("w = 128: m = n = 17,408, k = 3,735,552 (planned, Piz-Daint-like S)");
    println!("{:>7} | {:>12} {:>12} {:>12} | speedup", "cores", "COSMA MB", "ScaLAPACK MB", "CTF MB");
    for p in [2048usize, 4096, 8192, 16384] {
        let prob = MmmProblem::rpa_water(128, p, MachineSpec::piz_daint(p).mem_words);
        let mb = |w: f64| w * 8.0 / 1e6;
        let q_cosma = plan(&prob, &cfg, &model).expect("cosma").clone();
        let t_cosma = q_cosma.simulate(&model, true).time_s;
        let q_summa = baselines::summa::plan(&prob).expect("summa");
        let t_summa = q_summa.simulate(&model, true).time_s;
        let q_ctf = baselines::p25d::plan(&prob).expect("p25d");
        let t_ctf = q_ctf.simulate(&model, true).time_s;
        let best_other = t_summa.min(t_ctf);
        println!(
            "{p:>7} | {:>12.1} {:>12.1} {:>12.1} | {:.2}x",
            mb(q_cosma.mean_comm_words()),
            mb(q_summa.mean_comm_words()),
            mb(q_ctf.mean_comm_words()),
            best_other / t_cosma
        );
    }
    println!("\n(COSMA's advantage on tall-and-skinny matrices is the paper's headline result.)");
}
