//! The paper's motivating production workload (§8): the matrix products of
//! RPA energy calculations for `w` water molecules, `m = n = 136·w`,
//! `k = 228·w²` — extremely "tall-and-skinny" (largeK).
//!
//! Small `w` is executed and verified on the threaded simulator; the paper's
//! `w = 128` (17,408 × 3,735,552) is planned at full scale and the per-rank
//! communication of COSMA vs the baselines is reported, reproducing the
//! strong-scaling setup of Figures 10–11. Everything goes through
//! [`RunSession`] over the full algorithm registry.
//!
//! Run with: `cargo run --release --example rpa_water`

use cosma::api::{AlgoId, RunSession};
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::machine::MachineSpec;

fn main() {
    let registry = baselines::registry();
    let model = CostModel::piz_daint_two_sided();

    // --- Executed: w = 2 on 16 simulated ranks ---
    let small = MmmProblem::rpa_water(2, 16, 1 << 17);
    println!("w = 2: m = n = {}, k = {} on {} ranks (executed)", small.m, small.n, small.k);
    let a = Matrix::deterministic(small.m, small.k, 3);
    let b = Matrix::deterministic(small.k, small.n, 4);
    let (dplan, _) = RunSession::new(small)
        .machine(model)
        .execute_verified(&a, &b)
        .expect("cosma executes");
    println!("  verified ✓  (grid {:?})\n", dplan.grid);

    // --- Planned at paper scale: w = 128, strong scaling ---
    println!("w = 128: m = n = 17,408, k = 3,735,552 (planned, Piz-Daint-like S)");
    println!("{:>7} | {:>12} {:>12} {:>12} | speedup", "cores", "cosma MB", "summa MB", "p25d MB");
    for p in [2048usize, 4096, 8192, 16384] {
        let prob = MmmProblem::rpa_water(128, p, MachineSpec::piz_daint(p).mem_words);
        let mb = |w: f64| w * 8.0 / 1e6;
        let run = |id: AlgoId| {
            RunSession::new(prob)
                .machine(model)
                .registry(registry.clone())
                .algorithm(id)
                .run()
                .unwrap_or_else(|e| panic!("{id} at p={p}: {e}"))
        };
        let cosma = run(AlgoId::Cosma);
        let summa = run(AlgoId::Summa);
        let ctf = run(AlgoId::P25d);
        let best_other = summa.report.time_s.min(ctf.report.time_s);
        println!(
            "{p:>7} | {:>12.1} {:>12.1} {:>12.1} | {:.2}x",
            mb(cosma.plan.mean_comm_words()),
            mb(summa.plan.mean_comm_words()),
            mb(ctf.plan.mean_comm_words()),
            best_other / cosma.report.time_s
        );
    }
    println!("\n(COSMA's advantage on tall-and-skinny matrices is the paper's headline result.)");
}
