//! # cosma-repro — workspace façade
//!
//! Re-exports the crates of the COSMA reproduction so that examples and
//! integration tests can use a single dependency:
//!
//! * [`pebbles`] — red-blue pebble game, CDAGs, X-partitions, MMM I/O lower
//!   bounds (paper §2.2, §4, §5).
//! * [`densemat`] — dense-matrix substrate: storage, GEMM kernels, layouts.
//! * [`mpsim`] — simulated distributed machine: threaded, sharded and
//!   event-driven (stackless, 100k-rank) SPMD
//!   executors, collectives, traffic counters, α-β-γ cost model (replaces
//!   Piz Daint + MPI + mpiP).
//! * [`cosma`] — the paper's contribution: near-communication-optimal
//!   distributed matrix multiplication (§3, §6, §7).
//! * [`baselines`] — ScaLAPACK-style SUMMA, Cannon, 2.5D/3D (CTF-style) and
//!   CARMA comparison algorithms (§2.4), plus [`baselines::registry`], the
//!   full five-algorithm [`cosma::api::AlgorithmRegistry`].
//! * [`serve`] — planning-as-a-service: a sharded LRU plan cache keyed by
//!   canonical [`serve::PlanKey`]s, a cost-model auto-planner selecting the
//!   cheapest feasible algorithm per request, and a multi-tenant
//!   [`serve::Server`] executing many independent worlds concurrently over
//!   a shared scheduler pool.
//!
//! The front door is [`cosma::api::RunSession`]: pick a problem, a cost
//! model and an [`cosma::api::AlgoId`], then `.plan()`, `.run()` (cost-model
//! simulation) or `.execute()` (real execution — `ExecBackend::auto`
//! escalates threaded → sharded worker-pool → event-driven stackless by
//! world size, so any rank count up to 131072 runs end-to-end):
//!
//! ```
//! use cosma_repro::cosma::api::{AlgoId, RunSession};
//! use cosma_repro::cosma::problem::MmmProblem;
//!
//! let outcome = RunSession::new(MmmProblem::new(64, 64, 64, 16, 1 << 12))
//!     .registry(cosma_repro::baselines::registry())
//!     .algorithm(AlgoId::Cannon)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.plan.grid, [4, 4, 1]);
//! ```
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use baselines;
pub use cosma;
pub use densemat;
pub use mpsim;
pub use pebbles;
pub use serve;
