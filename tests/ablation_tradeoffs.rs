//! Ablations of the design choices DESIGN.md calls out:
//!
//! * the I/O–latency trade-off of §6.3 (tile size sweeps);
//! * the grid-fitting δ (idle-rank budget) of §7.1;
//! * the overlap of §7.3 (time with vs without);
//! * the one-sided backend of §7.4 (lower α ⇒ lower simulated time).

use cosma::analysis::io_latency_tradeoff;
use cosma::api::RunSession;
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

fn model() -> CostModel {
    CostModel::piz_daint_two_sided()
}

/// Plan COSMA with an explicit grid-fitting δ through the session API.
fn cosma_plan_delta(prob: &MmmProblem, delta: f64) -> DistPlan {
    RunSession::new(*prob)
        .machine(model())
        .delta(delta)
        .plan()
        .expect("feasible problem")
}

#[test]
fn io_latency_tradeoff_has_the_paper_shape() {
    // Q(a) falls monotonically up to sqrt(S); L(a) has a minimum strictly
    // inside (0, sqrt(S)) because the shrinking buffer blows up the round
    // count near the memory limit.
    let prob = MmmProblem::new(1 << 11, 1 << 11, 1 << 11, 8, 40_000);
    let s = (prob.mem_words as f64).sqrt();
    let mut prev_q = f64::INFINITY;
    let mut ls = Vec::new();
    for i in 1..20 {
        let a = s * i as f64 / 20.0;
        let (q, l) = io_latency_tradeoff(&prob, a);
        assert!(q < prev_q, "Q must fall with a (a={a})");
        prev_q = q;
        ls.push(l);
    }
    let min_idx = ls
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;
    assert!(min_idx > 0 && min_idx < ls.len() - 1, "L minimum must be interior (at {min_idx})");
    assert!(ls[ls.len() - 1] > ls[min_idx], "L explodes near a = sqrt(S)");
}

#[test]
fn delta_ablation_over_awkward_rank_counts() {
    // Allowing 3% idle ranks searches a superset of grids, so the fit
    // objective can only improve; for the paper's p = 65 the volume cut is
    // dramatic (Figure 5).
    for p in [65usize, 67, 97, 130, 514] {
        let prob = MmmProblem::new(4096, 4096, 4096, p, 1 << 22);
        let strict = cosma::grid::fit_ranks(&prob, 0.0, &model()).unwrap();
        let relaxed = cosma::grid::fit_ranks(&prob, 0.03, &model()).unwrap();
        assert!(
            relaxed.score <= strict.score + 1e-15,
            "p={p}: superset search must not worsen the objective"
        );
        if p == 65 {
            let strict_plan = cosma_plan_delta(&prob, 0.0);
            let relaxed_plan = cosma_plan_delta(&prob, 0.03);
            let (qs, qr) = (strict_plan.mean_comm_words(), relaxed_plan.mean_comm_words());
            assert!(qr < qs * 0.8, "p=65: expected a big volume cut, got {qr} vs {qs}");
        }
    }
}

#[test]
fn overlap_ablation_hides_communication() {
    // In a bandwidth-heavy scenario, overlap must cut the simulated time;
    // the hidden fraction equals the comm that fits under compute.
    let prob = MmmProblem::new(4096, 4096, 4096, 256, 1 << 17);
    let plan = cosma_plan_delta(&prob, 0.03);
    let without = plan.simulate(&model(), false);
    let with = plan.simulate(&model(), true);
    assert!(with.time_s < without.time_s, "overlap must help");
    assert!(with.critical.exposed_comm_s < without.critical.exposed_comm_s);
    // Hidden communication never exceeds total communication.
    assert!(with.critical.total_comm_s >= with.critical.exposed_comm_s);
    assert!((with.critical.total_comm_s - without.critical.total_comm_s).abs() < 1e-12);
}

#[test]
fn one_sided_alpha_reduces_latency_bound_cost() {
    // Same plan, two backends: the RMA cost model's lower alpha shows up in
    // simulated time exactly proportionally to the message count.
    let prob = MmmProblem::new(512, 512, 512, 64, 1 << 13);
    let two = CostModel::piz_daint_two_sided();
    let one = CostModel::piz_daint_one_sided();
    let plan = RunSession::new(prob).machine(two).plan().unwrap();
    let t2 = plan.simulate(&two, false);
    let t1 = plan.simulate(&one, false);
    assert!(t1.time_s < t2.time_s, "lower alpha must lower time");
    // The difference is purely latency: words and flops identical.
    assert!((t1.critical.compute_s - t2.critical.compute_s).abs() < 1e-15);
}

#[test]
fn round_grouping_preserves_totals() {
    // The MAX_PLAN_ROUNDS grouping must leave totals identical: construct a
    // problem whose natural step count exceeds the cap and compare against
    // the sum the ungrouped step structure implies.
    use cosma::schedule::latency_steps;
    let prob = MmmProblem::new(64, 64, 1 << 14, 4, 64 * 64 + 2 * 128 + 64);
    let plan = cosma_plan_delta(&prob, 0.03);
    for rp in plan.ranks.iter().filter(|r| r.active) {
        let b = &rp.bricks[0];
        let sp = latency_steps(b.rows.len(), b.cols.len(), b.ks.len(), prob.mem_words).unwrap();
        assert!(rp.rounds.len() <= cosma::algorithm::MAX_PLAN_ROUNDS + 1);
        // Flops across rounds == 2 * brick volume + reduction adds.
        let mult_flops: u64 =
            rp.rounds.iter().map(|r| r.flops).sum::<u64>() - rp.rounds.iter().map(|r| r.c_words).sum::<u64>();
        assert_eq!(mult_flops, 2 * b.volume(), "rank {}", rp.rank);
        // Slab structure covers the brick's k extent.
        assert_eq!(sp.slabs.iter().sum::<usize>(), b.ks.len());
    }
}
