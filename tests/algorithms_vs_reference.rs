//! Cross-crate integration: every distributed algorithm, on the same
//! simulated machine, must produce exactly the same product as the
//! sequential reference kernel — across shapes, rank counts and memory
//! budgets, including adversarial (prime) dimensions like the paper's §8
//! "chosen adversarially, e.g. n³ + 1".
//!
//! All algorithms run through [`RunSession`] over the shared registry; the
//! session assembles each algorithm's distributed output shares into the
//! full product with the same code path.

use cosma::api::{AlgoId, RunSession};
use cosma::problem::MmmProblem;
use cosma::Backend;
use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;

fn reference(m: usize, n: usize, k: usize) -> (Matrix, Matrix, Matrix) {
    let a = Matrix::deterministic(m, k, 7);
    let b = Matrix::deterministic(k, n, 8);
    let c = matmul(&a, &b);
    (a, b, c)
}

fn session(prob: &MmmProblem, id: AlgoId) -> RunSession {
    RunSession::new(*prob)
        .machine(CostModel::piz_daint_two_sided())
        .registry(baselines::registry())
        .algorithm(id)
}

fn run(prob: &MmmProblem, id: AlgoId) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    session(prob, id).execute(&a, &b).unwrap_or_else(|e| panic!("{id}: {e}")).c
}

fn run_cosma_backend(prob: &MmmProblem, backend: Backend) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    session(prob, AlgoId::Cosma)
        .backend(backend)
        .execute(&a, &b)
        .expect("cosma executes")
        .c
}

fn assert_all_agree(prob: &MmmProblem, ids: &[AlgoId]) {
    let (_, _, want) = reference(prob.m, prob.n, prob.k);
    for &id in ids {
        let c = run(prob, id);
        assert!(want.approx_eq(&c, 1e-9), "{id}: max diff {}", want.max_abs_diff(&c));
    }
}

#[test]
fn all_algorithms_agree_square() {
    let prob = MmmProblem::new(32, 32, 32, 16, 1 << 13);
    assert_all_agree(&prob, &AlgoId::ALL);
    let (_, _, want) = reference(32, 32, 32);
    let c = run_cosma_backend(&prob, Backend::OneSided);
    assert!(want.approx_eq(&c, 1e-9), "cosma/1s: max diff {}", want.max_abs_diff(&c));
}

#[test]
fn all_algorithms_agree_adversarial_primes() {
    // Dimensions that divide nothing, on a square+power-of-two p.
    let prob = MmmProblem::new(29, 31, 37, 16, 1 << 13);
    assert_all_agree(&prob, &AlgoId::ALL);
}

#[test]
fn all_algorithms_agree_largek() {
    let prob = MmmProblem::new(12, 12, 192, 8, 1 << 12);
    assert_all_agree(&prob, &[AlgoId::Cosma, AlgoId::Summa, AlgoId::P25d, AlgoId::Carma]);
}

#[test]
fn all_algorithms_agree_flat() {
    let prob = MmmProblem::new(48, 48, 6, 16, 1 << 12);
    assert_all_agree(&prob, &[AlgoId::Cosma, AlgoId::Summa, AlgoId::Carma]);
}

#[test]
fn cosma_agrees_at_larger_scale() {
    // 64 ranks, non-power-of-two dims, both backends.
    let prob = MmmProblem::new(60, 52, 44, 64, 1 << 12);
    let (_, _, want) = reference(60, 52, 44);
    let c2 = run_cosma_backend(&prob, Backend::TwoSided);
    let c1 = run_cosma_backend(&prob, Backend::OneSided);
    assert!(want.approx_eq(&c2, 1e-9));
    assert!(want.approx_eq(&c1, 1e-9));
}

#[test]
fn non_grid_friendly_rank_counts() {
    // 11 (prime), 12, 24: COSMA must handle them all (CARMA/Cannon cannot).
    for p in [11usize, 12, 24] {
        let prob = MmmProblem::new(30, 30, 30, p, 1 << 12);
        let (_, _, want) = reference(30, 30, 30);
        let c = run(&prob, AlgoId::Cosma);
        assert!(want.approx_eq(&c, 1e-9), "p={p}");
    }
}
