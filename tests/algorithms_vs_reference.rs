//! Cross-crate integration: every distributed algorithm, on the same
//! simulated machine, must produce exactly the same product as the
//! sequential reference kernel — across shapes, rank counts and memory
//! budgets, including adversarial (prime) dimensions like the paper's §8
//! "chosen adversarially, e.g. n³ + 1".

use cosma::algorithm::{assemble_c, execute as cosma_execute, plan as cosma_plan, Backend, CosmaConfig};
use cosma::problem::MmmProblem;
use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::run_spmd;
use mpsim::machine::MachineSpec;

fn reference(m: usize, n: usize, k: usize) -> (Matrix, Matrix, Matrix) {
    let a = Matrix::deterministic(m, k, 7);
    let b = Matrix::deterministic(k, n, 8);
    let c = matmul(&a, &b);
    (a, b, c)
}

fn run_cosma(prob: &MmmProblem, backend: Backend) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    let cfg = CosmaConfig { delta: 0.03, backend };
    let model = CostModel::piz_daint_two_sided();
    let plan = cosma_plan(prob, &cfg, &model).expect("cosma plan");
    plan.validate().expect("cosma plan valid");
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| cosma_execute(comm, &plan, &cfg, &a, &b));
    assemble_c(out.results.into_iter().flatten(), prob.m, prob.n)
}

fn run_summa(prob: &MmmProblem) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    let plan = baselines::summa::plan(prob).expect("summa plan");
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| baselines::summa::execute(comm, &plan, &a, &b));
    let mut c = Matrix::zeros(prob.m, prob.n);
    for (rows, cols, blk) in out.results {
        c.set_block(rows.start, cols.start, &blk);
    }
    c
}

fn run_p25d(prob: &MmmProblem) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    let plan = baselines::p25d::plan(prob).expect("p25d plan");
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| baselines::p25d::execute(comm, &plan, &a, &b));
    let mut c = Matrix::zeros(prob.m, prob.n);
    for (rows, cols, blk) in out.results.into_iter().flatten() {
        c.set_block(rows.start, cols.start, &blk);
    }
    c
}

fn run_cannon(prob: &MmmProblem) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    let plan = baselines::cannon::plan(prob).expect("cannon plan");
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| baselines::cannon::execute(comm, &plan, &a, &b));
    let mut c = Matrix::zeros(prob.m, prob.n);
    for (rows, cols, blk) in out.results {
        c.set_block(rows.start, cols.start, &blk);
    }
    c
}

fn run_carma(prob: &MmmProblem) -> Matrix {
    let (a, b, _) = reference(prob.m, prob.n, prob.k);
    let plan = baselines::carma::plan(prob).expect("carma plan");
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| baselines::carma::execute(comm, &plan, &a, &b));
    let mut c = Matrix::zeros(prob.m, prob.n);
    for res in &out.results {
        let flat_cols = res.cols.len();
        for (w, &v) in res.data.iter().enumerate() {
            let flat = res.offset + w;
            c.set(res.rows.start + flat / flat_cols, res.cols.start + flat % flat_cols, v);
        }
    }
    c
}

#[test]
fn all_algorithms_agree_square() {
    let prob = MmmProblem::new(32, 32, 32, 16, 1 << 13);
    let (_, _, want) = reference(32, 32, 32);
    for (name, c) in [
        ("cosma/2s", run_cosma(&prob, Backend::TwoSided)),
        ("cosma/1s", run_cosma(&prob, Backend::OneSided)),
        ("summa", run_summa(&prob)),
        ("cannon", run_cannon(&prob)),
        ("p25d", run_p25d(&prob)),
        ("carma", run_carma(&prob)),
    ] {
        assert!(want.approx_eq(&c, 1e-9), "{name}: max diff {}", want.max_abs_diff(&c));
    }
}

#[test]
fn all_algorithms_agree_adversarial_primes() {
    // Dimensions that divide nothing, on a square+power-of-two p.
    let prob = MmmProblem::new(29, 31, 37, 16, 1 << 13);
    let (_, _, want) = reference(29, 31, 37);
    for (name, c) in [
        ("cosma", run_cosma(&prob, Backend::TwoSided)),
        ("summa", run_summa(&prob)),
        ("cannon", run_cannon(&prob)),
        ("p25d", run_p25d(&prob)),
        ("carma", run_carma(&prob)),
    ] {
        assert!(want.approx_eq(&c, 1e-9), "{name}: max diff {}", want.max_abs_diff(&c));
    }
}

#[test]
fn all_algorithms_agree_largek() {
    let prob = MmmProblem::new(12, 12, 192, 8, 1 << 12);
    let (_, _, want) = reference(12, 12, 192);
    for (name, c) in [
        ("cosma", run_cosma(&prob, Backend::TwoSided)),
        ("summa", run_summa(&prob)),
        ("p25d", run_p25d(&prob)),
        ("carma", run_carma(&prob)),
    ] {
        assert!(want.approx_eq(&c, 1e-9), "{name}: max diff {}", want.max_abs_diff(&c));
    }
}

#[test]
fn all_algorithms_agree_flat() {
    let prob = MmmProblem::new(48, 48, 6, 16, 1 << 12);
    let (_, _, want) = reference(48, 48, 6);
    for (name, c) in [
        ("cosma", run_cosma(&prob, Backend::TwoSided)),
        ("summa", run_summa(&prob)),
        ("carma", run_carma(&prob)),
    ] {
        assert!(want.approx_eq(&c, 1e-9), "{name}: max diff {}", want.max_abs_diff(&c));
    }
}

#[test]
fn cosma_agrees_at_larger_scale() {
    // 64 ranks, non-power-of-two dims, both backends.
    let prob = MmmProblem::new(60, 52, 44, 64, 1 << 12);
    let (_, _, want) = reference(60, 52, 44);
    let c2 = run_cosma(&prob, Backend::TwoSided);
    let c1 = run_cosma(&prob, Backend::OneSided);
    assert!(want.approx_eq(&c2, 1e-9));
    assert!(want.approx_eq(&c1, 1e-9));
}

#[test]
fn non_grid_friendly_rank_counts() {
    // 11 (prime), 12, 24: COSMA must handle them all (CARMA/Cannon cannot).
    for p in [11usize, 12, 24] {
        let prob = MmmProblem::new(30, 30, 30, p, 1 << 12);
        let (_, _, want) = reference(30, 30, 30);
        let c = run_cosma(&prob, Backend::TwoSided);
        assert!(want.approx_eq(&c, 1e-9), "p={p}");
    }
}
