//! Theory ↔ systems invariants: the measured plans must respect the paper's
//! bounds and orderings.
//!
//! * COSMA's per-rank volume tracks the Theorem-2 envelope (Eq. 33);
//! * COSMA never moves more data than any baseline on common scenarios
//!   (Table 1's "optimal for all m, n, k, p" claim, at test scale);
//! * the greedy sequential schedules never beat Theorem 1;
//! * the exhaustively-optimal pebblings never beat Theorem 1 either.

use cosma::algorithm::{plan as cosma_plan, CosmaConfig};
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;
use pebbles::bounds::{theorem1_lower_bound, theorem2_parallel_bound};
use pebbles::game::validate_complete;
use pebbles::greedy::near_optimal_moves;
use pebbles::mmm::MmmCdag;

fn model() -> CostModel {
    CostModel::piz_daint_two_sided()
}

#[test]
fn cosma_volume_tracks_theorem2_envelope() {
    for &(m, n, k, p, s) in &[
        (256usize, 256usize, 256usize, 16usize, 1usize << 13),
        (64, 64, 4096, 32, 1 << 12),
        (512, 512, 64, 64, 1 << 13),
        (1024, 96, 1024, 24, 1 << 14),
    ] {
        let prob = MmmProblem::new(m, n, k, p, s);
        let plan = cosma_plan(&prob, &CosmaConfig::default(), &model()).unwrap();
        let bound = theorem2_parallel_bound(m, n, k, p, s);
        let measured = plan.mean_comm_words();
        // The plan's received words exclude the rank's own shard, and the
        // bound's "+S" charges full buffer reloads, so the plan may sit
        // below the envelope — but never above 2x of it (attainability), and
        // never below the envelope's leading term by more than the shard
        // discount.
        assert!(
            measured <= 2.0 * bound,
            "({m},{n},{k},p={p},S={s}): measured {measured} far above bound {bound}"
        );
        assert!(
            measured >= 0.2 * bound,
            "({m},{n},{k},p={p},S={s}): measured {measured} implausibly below bound {bound}"
        );
    }
}

#[test]
fn cosma_never_moves_more_than_baselines() {
    // Scenarios where all four algorithms are applicable: square p (Cannon),
    // power-of-two p (CARMA).
    for &(m, n, k, p, s) in &[
        (256usize, 256usize, 256usize, 16usize, 1usize << 15),
        (64, 64, 2048, 16, 1 << 16),
        (2048, 64, 64, 16, 1 << 16),
        (512, 512, 32, 64, 1 << 13),
        (384, 384, 384, 64, 1 << 14),
    ] {
        let prob = MmmProblem::new(m, n, k, p, s);
        // Mean received words per rank — the paper's Table 4 metric.
        let q_cosma = cosma_plan(&prob, &CosmaConfig::default(), &model()).unwrap().mean_comm_words();
        let q_summa = baselines::summa::plan(&prob).unwrap().mean_comm_words();
        let q_cannon = baselines::cannon::plan(&prob).unwrap().mean_comm_words();
        let q_p25d = baselines::p25d::plan(&prob).unwrap().mean_comm_words();
        let q_carma = baselines::carma::plan(&prob).unwrap().mean_comm_words();
        for (name, q) in [
            ("summa", q_summa),
            ("cannon", q_cannon),
            ("p25d", q_p25d),
            ("carma", q_carma),
        ] {
            assert!(q_cosma <= q * 1.05, "({m},{n},{k},p={p},S={s}): COSMA {q_cosma} above {name} {q}");
        }
    }
}

#[test]
fn greedy_pebbling_never_beats_theorem1() {
    for &(m, n, k, s) in &[
        (6usize, 6usize, 6usize, 10usize),
        (8, 8, 8, 16),
        (10, 6, 8, 25),
        (4, 12, 5, 12),
    ] {
        let g = MmmCdag::new(m, n, k);
        let (moves, a, b) = near_optimal_moves(&g, s);
        let io = validate_complete(g.graph(), s, &moves).unwrap();
        let bound = theorem1_lower_bound(m, n, k, s);
        assert!(io as f64 >= bound, "({m},{n},{k},S={s}) tile ({a},{b}): measured {io} < bound {bound}");
    }
}

#[test]
fn exhaustive_optimum_sandwiched_by_bound_and_greedy() {
    use pebbles::optimal::{min_io_exhaustive, SearchResult};
    for &(m, n, k, s) in &[(2usize, 2usize, 1usize, 4usize), (1, 2, 2, 4), (2, 1, 2, 5)] {
        let g = MmmCdag::new(m, n, k);
        let (moves, _, _) = near_optimal_moves(&g, s);
        let greedy = validate_complete(g.graph(), s, &moves).unwrap();
        match min_io_exhaustive(g.graph(), s, 2_000_000) {
            SearchResult::Optimal(opt) => {
                let lb = theorem1_lower_bound(m, n, k, s);
                // Theorem 1's closed form can exceed the true optimum by
                // rounding on tiny instances; it must hold within 1 word.
                assert!(opt as f64 + 1.0 >= lb.floor(), "({m},{n},{k},S={s}): opt {opt} < bound {lb}");
                assert!(opt <= greedy, "({m},{n},{k},S={s}): opt {opt} > greedy {greedy}");
            }
            other => panic!("({m},{n},{k},S={s}): search incomplete: {other:?}"),
        }
    }
}

#[test]
fn extra_memory_reduces_cosma_volume() {
    // Eq. 33: more memory (up to the cubic point) strictly helps.
    let mk = |s: usize| {
        let prob = MmmProblem::new(512, 512, 512, 64, s);
        cosma_plan(&prob, &CosmaConfig::default(), &model()).unwrap().mean_comm_words()
    };
    let tight = mk(1 << 13);
    let roomy = mk(1 << 17);
    assert!(roomy < tight, "S x16 must reduce volume: {roomy} vs {tight}");
}

#[test]
fn volume_scales_down_with_ranks() {
    // Strong scaling: per-rank volume decreases with p (until latency
    // effects, which the plan does not model as volume).
    let mk = |p: usize| {
        let prob = MmmProblem::new(512, 512, 512, p, 1 << 16);
        cosma_plan(&prob, &CosmaConfig::default(), &model()).unwrap().mean_comm_words()
    };
    let p8 = mk(8);
    let p64 = mk(64);
    assert!(p64 < p8, "p=64 volume {p64} must undercut p=8 volume {p8}");
}
