//! The central consistency contract of this reproduction: the *analytic*
//! plans (which produce the paper-scale numbers in Figures 6–14 and
//! Table 4) must predict, word for word and rank for rank, the traffic of
//! the *executed* algorithms as measured by the mpiP-style counters.

use cosma::algorithm::{execute as cosma_execute, plan as cosma_plan, Backend, CosmaConfig};
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::run_spmd;
use mpsim::machine::MachineSpec;
use mpsim::stats::RankStats;

fn assert_traffic_matches(plan: &DistPlan, stats: &[RankStats]) {
    for (r, st) in stats.iter().enumerate() {
        assert_eq!(
            st.total_recv(),
            plan.ranks[r].comm_words(),
            "{}: rank {r} received {} planned {}",
            plan.algo,
            st.total_recv(),
            plan.ranks[r].comm_words()
        );
        assert_eq!(
            st.msgs_recv,
            plan.ranks[r].comm_msgs(),
            "{}: rank {r} message count",
            plan.algo
        );
    }
}

fn inputs(prob: &MmmProblem) -> (Matrix, Matrix) {
    (
        Matrix::deterministic(prob.m, prob.k, 17),
        Matrix::deterministic(prob.k, prob.n, 18),
    )
}

#[test]
fn cosma_plan_predicts_execution_exactly() {
    for &(m, n, k, p, s) in &[
        (32usize, 32usize, 32usize, 8usize, 1usize << 12),
        (20, 36, 28, 12, 1 << 11),
        (16, 16, 128, 16, 700),
        (96, 64, 16, 9, 1 << 12),
        (23, 29, 31, 5, 1 << 11),
    ] {
        let prob = MmmProblem::new(m, n, k, p, s);
        let cfg = CosmaConfig::default();
        let plan = cosma_plan(&prob, &cfg, &CostModel::piz_daint_two_sided()).unwrap();
        let (a, b) = inputs(&prob);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let out = run_spmd(&spec, |comm| {
            cosma_execute(comm, &plan, &cfg, &a, &b);
        });
        assert_traffic_matches(&plan, &out.stats);
    }
}

#[test]
fn cosma_one_sided_backend_matches_same_plan() {
    // §7.4: both backends move exactly the planned words.
    let prob = MmmProblem::new(24, 24, 48, 8, 1 << 11);
    let cfg1 = CosmaConfig { delta: 0.03, backend: Backend::OneSided };
    let plan = cosma_plan(&prob, &cfg1, &CostModel::piz_daint_one_sided()).unwrap();
    let (a, b) = inputs(&prob);
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| {
        cosma_execute(comm, &plan, &cfg1, &a, &b);
    });
    for (r, st) in out.stats.iter().enumerate() {
        assert_eq!(st.total_recv(), plan.ranks[r].comm_words(), "rank {r} words (RMA)");
    }
}

#[test]
fn summa_plan_predicts_execution_exactly() {
    for &(m, n, k, p, s) in &[
        (32usize, 32usize, 32usize, 4usize, 1usize << 12),
        (40, 24, 56, 6, 1 << 12),
        (16, 16, 96, 8, 500),
    ] {
        let prob = MmmProblem::new(m, n, k, p, s);
        let plan = baselines::summa::plan(&prob).unwrap();
        let (a, b) = inputs(&prob);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let out = run_spmd(&spec, |comm| {
            baselines::summa::execute(comm, &plan, &a, &b);
        });
        assert_traffic_matches(&plan, &out.stats);
    }
}

#[test]
fn cannon_plan_predicts_execution_exactly() {
    for &(m, n, k, p) in &[(32usize, 32usize, 32usize, 9usize), (25, 30, 35, 25), (18, 20, 22, 4)] {
        let prob = MmmProblem::new(m, n, k, p, 1 << 13);
        let plan = baselines::cannon::plan(&prob).unwrap();
        let (a, b) = inputs(&prob);
        let spec = MachineSpec::piz_daint_with_memory(p, prob.mem_words);
        let out = run_spmd(&spec, |comm| {
            baselines::cannon::execute(comm, &plan, &a, &b);
        });
        assert_traffic_matches(&plan, &out.stats);
    }
}

#[test]
fn p25d_plan_predicts_execution_exactly() {
    for &(m, n, k, p, s) in &[
        (32usize, 32usize, 32usize, 8usize, 1usize << 13),
        (24, 24, 96, 27, 1 << 12),
        (36, 28, 44, 16, 1 << 13),
    ] {
        let prob = MmmProblem::new(m, n, k, p, s);
        let plan = baselines::p25d::plan(&prob).unwrap();
        let (a, b) = inputs(&prob);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let out = run_spmd(&spec, |comm| {
            baselines::p25d::execute(comm, &plan, &a, &b);
        });
        assert_traffic_matches(&plan, &out.stats);
    }
}

#[test]
fn carma_plan_predicts_execution_exactly() {
    for &(m, n, k, p) in &[
        (32usize, 32usize, 32usize, 8usize),
        (12, 12, 384, 16),
        (128, 16, 16, 8),
        (19, 27, 41, 32),
    ] {
        let prob = MmmProblem::new(m, n, k, p, 1 << 13);
        let plan = baselines::carma::plan(&prob).unwrap();
        let (a, b) = inputs(&prob);
        let spec = MachineSpec::piz_daint_with_memory(p, prob.mem_words);
        let out = run_spmd(&spec, |comm| {
            baselines::carma::execute(comm, &plan, &a, &b);
        });
        assert_traffic_matches(&plan, &out.stats);
    }
}

#[test]
fn planned_memory_is_respected_by_execution() {
    // The executor's tracked peak allocation stays within the plan's
    // memory figure plus the input-shard footprint convention.
    let prob = MmmProblem::new(32, 32, 64, 8, 1 << 11);
    let cfg = CosmaConfig::default();
    let plan = cosma_plan(&prob, &cfg, &CostModel::piz_daint_two_sided()).unwrap();
    plan.validate().unwrap();
    let (a, b) = inputs(&prob);
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let out = run_spmd(&spec, |comm| {
        cosma_execute(comm, &plan, &cfg, &a, &b);
    });
    for (r, st) in out.stats.iter().enumerate() {
        assert!(
            st.peak_mem_words <= plan.ranks[r].mem_words.max(1) + prob.mem_words as u64,
            "rank {r} tracked {} vs plan {}",
            st.peak_mem_words,
            plan.ranks[r].mem_words
        );
    }
}
