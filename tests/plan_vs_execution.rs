//! The central consistency contract of this reproduction: the *analytic*
//! plans (which produce the paper-scale numbers in Figures 6–14 and
//! Table 4) must predict, word for word and rank for rank, the traffic of
//! the *executed* algorithms as measured by the mpiP-style counters.
//!
//! Every algorithm is planned and executed through its [`MmmAlgorithm`]
//! registry entry — no per-algorithm entry points.

use cosma::api::{execute_boxed, AlgoId, CosmaAlgorithm, MmmAlgorithm, PlanError, RunSession};
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use cosma::{Backend, CosmaConfig};
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::machine::MachineSpec;
use mpsim::stats::RankStats;

fn assert_traffic_matches(plan: &DistPlan, stats: &[RankStats]) {
    for (r, st) in stats.iter().enumerate() {
        assert_eq!(
            st.total_recv(),
            plan.ranks[r].comm_words(),
            "{}: rank {r} received {} planned {}",
            plan.algo,
            st.total_recv(),
            plan.ranks[r].comm_words()
        );
        assert_eq!(st.msgs_recv, plan.ranks[r].comm_msgs(), "{}: rank {r} message count", plan.algo);
    }
}

fn inputs(prob: &MmmProblem) -> (Matrix, Matrix) {
    (Matrix::deterministic(prob.m, prob.k, 17), Matrix::deterministic(prob.k, prob.n, 18))
}

/// Plan + execute `id` on `prob` through the registry and check the traffic.
fn check(id: AlgoId, prob: &MmmProblem) {
    let session = RunSession::new(*prob)
        .machine(CostModel::piz_daint_two_sided())
        .registry(baselines::registry())
        .algorithm(id);
    let plan = session.plan().unwrap_or_else(|e| panic!("{id}: {e}"));
    let (a, b) = inputs(prob);
    let report = session.execute(&a, &b).unwrap_or_else(|e| panic!("{id}: {e}"));
    assert_traffic_matches(&plan, &report.stats);
}

#[test]
fn cosma_plan_predicts_execution_exactly() {
    for &(m, n, k, p, s) in &[
        (32usize, 32usize, 32usize, 8usize, 1usize << 12),
        (20, 36, 28, 12, 1 << 11),
        (16, 16, 128, 16, 700),
        (96, 64, 16, 9, 1 << 12),
        (23, 29, 31, 5, 1 << 11),
    ] {
        check(AlgoId::Cosma, &MmmProblem::new(m, n, k, p, s));
    }
}

#[test]
fn cosma_one_sided_backend_matches_same_plan() {
    // §7.4: both backends move exactly the planned words.
    let prob = MmmProblem::new(24, 24, 48, 8, 1 << 11);
    let session = RunSession::new(prob)
        .machine(CostModel::piz_daint_one_sided())
        .backend(Backend::OneSided);
    let plan = session.plan().unwrap();
    let (a, b) = inputs(&prob);
    let report = session.execute(&a, &b).unwrap();
    for (r, st) in report.stats.iter().enumerate() {
        assert_eq!(st.total_recv(), plan.ranks[r].comm_words(), "rank {r} words (RMA)");
    }
}

#[test]
fn summa_plan_predicts_execution_exactly() {
    for &(m, n, k, p, s) in &[
        (32usize, 32usize, 32usize, 4usize, 1usize << 12),
        (40, 24, 56, 6, 1 << 12),
        (16, 16, 96, 8, 500),
    ] {
        check(AlgoId::Summa, &MmmProblem::new(m, n, k, p, s));
    }
}

#[test]
fn cannon_plan_predicts_execution_exactly() {
    for &(m, n, k, p) in &[
        (32usize, 32usize, 32usize, 9usize),
        (25, 30, 35, 25),
        (18, 20, 22, 4),
    ] {
        check(AlgoId::Cannon, &MmmProblem::new(m, n, k, p, 1 << 13));
    }
}

#[test]
fn p25d_plan_predicts_execution_exactly() {
    for &(m, n, k, p, s) in &[
        (32usize, 32usize, 32usize, 8usize, 1usize << 13),
        (24, 24, 96, 27, 1 << 12),
        (36, 28, 44, 16, 1 << 13),
    ] {
        check(AlgoId::P25d, &MmmProblem::new(m, n, k, p, s));
    }
}

#[test]
fn carma_plan_predicts_execution_exactly() {
    for &(m, n, k, p) in &[
        (32usize, 32usize, 32usize, 8usize),
        (12, 12, 384, 16),
        (128, 16, 16, 8),
        (19, 27, 41, 32),
    ] {
        check(AlgoId::Carma, &MmmProblem::new(m, n, k, p, 1 << 13));
    }
}

#[test]
fn memory_starved_carma_plan_predicts_execution_exactly() {
    // S below the pure-BFS leaf footprint: the plan gains sequential DFS
    // steps and the streaming executor must move exactly the re-fetching
    // words the plan prices, message for message.
    for &(m, n, k, p, s) in &[
        (64usize, 64usize, 64usize, 8usize, 1usize << 10),
        (8, 8, 512, 4, 600),
        (96, 24, 24, 8, 800),
        (33, 45, 59, 16, 512),
    ] {
        let prob = MmmProblem::new(m, n, k, p, s);
        assert!(baselines::carma::dfs_leaf_count(&prob) > 1, "{m}x{n}x{k} S={s} must be memory-starved");
        check(AlgoId::Carma, &prob);
    }
}

#[test]
fn carma_streaming_peak_stays_within_s() {
    // The acceptance criterion in miniature: a memory-starved problem,
    // executed with S enforced as a hard budget, measures peak ≤ S on every
    // rank while the product and traffic stay exact.
    let prob = MmmProblem::new(64, 64, 64, 8, 1 << 10);
    let session = RunSession::new(prob)
        .machine(CostModel::piz_daint_two_sided())
        .registry(baselines::registry())
        .algorithm(AlgoId::Carma)
        .enforce_mem_budget();
    let (a, b) = inputs(&prob);
    let (plan, report) = session.execute_verified(&a, &b).expect("streaming CARMA within budget");
    assert!(plan.ranks.iter().all(|r| r.bricks.len() > 1), "expected DFS leaves");
    for (r, st) in report.stats.iter().enumerate() {
        assert!(
            st.peak_mem_words <= prob.mem_words as u64,
            "rank {r} peaked at {} words over S = {}",
            st.peak_mem_words,
            prob.mem_words
        );
    }
}

#[test]
fn planned_memory_is_respected_by_execution() {
    // The executor's tracked peak allocation stays within the plan's
    // memory figure plus the input-shard footprint convention.
    let prob = MmmProblem::new(32, 32, 64, 8, 1 << 11);
    let algo = CosmaAlgorithm::with_config(CosmaConfig::default());
    let plan = algo.plan(&prob, &CostModel::piz_daint_two_sided()).unwrap();
    plan.validate().unwrap();
    let (a, b) = inputs(&prob);
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    let report = execute_boxed(&algo, &plan, &spec, &a, &b).unwrap();
    for (r, st) in report.stats.iter().enumerate() {
        assert!(
            st.peak_mem_words <= plan.ranks[r].mem_words.max(1) + prob.mem_words as u64,
            "rank {r} tracked {} vs plan {}",
            st.peak_mem_words,
            plan.ranks[r].mem_words
        );
    }
}

#[test]
fn session_surfaces_constraint_errors_as_values() {
    // Rank-count constraints arrive as typed errors, not panics, from the
    // same entry point that plans everything else.
    let reg = baselines::registry();
    let model = CostModel::piz_daint_two_sided();
    let err = RunSession::new(MmmProblem::new(16, 16, 16, 5, 1 << 12))
        .machine(model)
        .registry(reg.clone())
        .algorithm(AlgoId::Cannon)
        .plan()
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::UnsupportedRanks {
            algo: AlgoId::Cannon,
            p: 5,
            ..
        }
    ));
    let err = RunSession::new(MmmProblem::new(16, 16, 16, 6, 1 << 12))
        .machine(model)
        .registry(reg)
        .algorithm(AlgoId::Carma)
        .plan()
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::UnsupportedRanks {
            algo: AlgoId::Carma,
            p: 6,
            ..
        }
    ));
}

#[test]
fn planned_time_predicts_measured_virtual_time() {
    // The time axis of the central contract: an event-backend run's virtual
    // clock against the plan's alpha-beta-gamma simulation. Compute time is
    // *exact* per rank (flops counters are plan-exact and gamma is shared);
    // the comm side carries the real dependency structure, so the machine
    // total is held to the stated agreement band instead.
    use mpsim::exec::ExecBackend;
    let model = CostModel::piz_daint_two_sided();
    for id in [AlgoId::Cosma, AlgoId::Summa, AlgoId::P25d, AlgoId::Carma] {
        let prob = MmmProblem::new(48, 48, 48, 16, 1 << 13);
        let session = RunSession::new(prob)
            .machine(model)
            .registry(baselines::registry())
            .algorithm(id)
            .exec_backend(ExecBackend::event());
        let plan = session.plan().unwrap_or_else(|e| panic!("{id}: {e}"));
        let (a, b) = inputs(&prob);
        let report = session.execute(&a, &b).unwrap_or_else(|e| panic!("{id}: {e}"));
        for (r, st) in report.stats.iter().enumerate() {
            let planned = plan.ranks[r].time_breakdown(&model, true);
            assert!(
                (st.time.compute_s - planned.compute_s).abs() <= 1e-12 * planned.compute_s.max(1.0),
                "{id}: rank {r} measured compute {} s vs planned {} s",
                st.time.compute_s,
                planned.compute_s
            );
        }
        let measured = report.measured_time_s();
        let planned = plan.simulate(&model, true).time_s;
        let f = bench::runner::TIME_AGREEMENT_FACTOR;
        assert!(
            measured <= planned * f && measured >= planned / f,
            "{id}: measured {measured} s vs planned {planned} s breaks the x{f} band"
        );
    }
}
