//! Property-based tests (proptest) over the core invariants:
//! random problems always yield valid plans; random tile shapes always yield
//! legal pebble schedules whose measured I/O matches the closed form; random
//! layouts always round-trip.

use cosma::algorithm::{even_range, plan as cosma_plan, CosmaConfig};
use cosma::problem::MmmProblem;
use densemat::layout::{gather, scatter, BlockCyclic, BlockedLayout};
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use pebbles::bounds::{theorem1_lower_bound, tiled_io};
use pebbles::game::validate_complete;
use pebbles::greedy::{tiled_capacity, tiled_moves};
use pebbles::mmm::MmmCdag;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn even_range_partitions_exactly(total in 1usize..5000, parts in 1usize..64) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for idx in 0..parts {
            let r = even_range(total, parts, idx);
            prop_assert_eq!(r.start, prev_end);
            prev_end = r.end;
            covered += r.len();
            // Balanced: sizes differ by at most one.
            prop_assert!(r.len() >= total / parts);
            prop_assert!(r.len() <= total.div_ceil(parts));
        }
        prop_assert_eq!(covered, total);
        prop_assert_eq!(prev_end, total);
    }

    #[test]
    fn cosma_plans_always_valid(
        m in 1usize..80,
        n in 1usize..80,
        k in 1usize..80,
        p in 1usize..24,
        s_extra in 0usize..4000,
    ) {
        // Guarantee feasibility: enough memory for a 1x1 tile plus buffers,
        // scaled up randomly.
        let s = m * n + 2 * (m + n) + 16 + s_extra;
        let prob = MmmProblem::new(m, n, k, p, s);
        let plan = cosma_plan(&prob, &CosmaConfig::default(), &CostModel::piz_daint_two_sided())
            .expect("feasible problem must plan");
        prop_assert!(plan.validate().is_ok(), "{:?}", plan.validate());
        // Load balance: no active rank does more than ceil-share work by
        // more than the ceil rounding in each dimension.
        let total: u64 = plan.ranks.iter().map(|r| r.volume()).sum();
        prop_assert_eq!(total, prob.volume());
    }

    #[test]
    fn carma_plans_cover_space(
        m in 1usize..64,
        n in 1usize..64,
        k in 1usize..64,
        logp in 0u32..6,
    ) {
        let prob = MmmProblem::new(m, n, k, 1 << logp, 1 << 20);
        let plan = baselines::carma::plan(&prob).unwrap();
        prop_assert!(plan.validate_coverage().is_ok());
    }

    #[test]
    fn summa_plans_cover_space(
        m in 2usize..64,
        n in 2usize..64,
        k in 2usize..64,
        p in 1usize..17,
    ) {
        // SUMMA needs a gm x gn = p grid no finer than the C matrix.
        prop_assume!(m * n >= p);
        let prob = MmmProblem::new(m, n, k, p, 1 << 20);
        match baselines::summa::plan(&prob) {
            Ok(plan) => prop_assert!(plan.validate().is_ok()),
            // p may still not factor into gm <= m, gn <= n (e.g. p = 13,
            // m = 2): a reported infeasibility is acceptable, silence not.
            Err(e) => prop_assert_eq!(e, baselines::BaselineError::NoFeasibleGrid),
        }
    }

    #[test]
    fn tiled_pebbling_valid_and_io_exact(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..8,
        a in 1usize..5,
        b in 1usize..5,
    ) {
        let g = MmmCdag::new(m, n, k);
        let moves = tiled_moves(&g, a, b);
        let io = validate_complete(g.graph(), tiled_capacity(a, b), &moves)
            .expect("generated schedule must be legal");
        prop_assert_eq!(io, tiled_io(m, n, k, a, b));
        prop_assert!(io as f64 >= theorem1_lower_bound(m, n, k, tiled_capacity(a, b)) - (m * n) as f64 - 1.0);
    }

    #[test]
    fn block_cyclic_roundtrip(
        rows in 1usize..40,
        cols in 1usize..40,
        rb in 1usize..8,
        cb in 1usize..8,
        pr in 1usize..5,
        pc in 1usize..5,
    ) {
        let m = Matrix::deterministic(rows, cols, 99);
        let bc = BlockCyclic::new(rows, cols, rb, cb, pr, pc);
        let locals = scatter(&bc, &m);
        prop_assert_eq!(locals.iter().map(Vec::len).sum::<usize>(), rows * cols);
        let back = gather(&bc, &locals);
        prop_assert_eq!(back, m);
    }

    #[test]
    fn blocked_layout_roundtrip(
        rows in 1usize..40,
        cols in 1usize..40,
        gr in 1usize..6,
        gc in 1usize..6,
    ) {
        let m = Matrix::deterministic(rows, cols, 7);
        let gr = gr.min(rows);
        let gc = gc.min(cols);
        let bl = BlockedLayout::even_grid(rows, cols, gr, gc);
        let back = gather(&bl, &scatter(&bl, &m));
        prop_assert_eq!(back, m);
        // Every rank owns a contiguous block whose size is balanced.
        for r in 0..gr * gc {
            let (rs, cs) = bl.block_of(r).expect("one block per rank");
            prop_assert!(rs.len() >= rows / gr && rs.len() <= rows.div_ceil(gr));
            prop_assert!(cs.len() >= cols / gc && cs.len() <= cols.div_ceil(gc));
        }
    }

    #[test]
    fn gemm_kernels_agree(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        threads in 1usize..5,
    ) {
        use densemat::gemm::{gemm_naive, gemm_parallel, gemm_tiled};
        let a = Matrix::deterministic(m, k, 1);
        let b = Matrix::deterministic(k, n, 2);
        let mut c0 = Matrix::zeros(m, n);
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        gemm_naive(&a, &b, &mut c0);
        gemm_tiled(&a, &b, &mut c1);
        gemm_parallel(&a, &b, &mut c2, threads);
        prop_assert!(c0.approx_eq(&c1, 1e-10));
        prop_assert!(c0.approx_eq(&c2, 1e-10));
    }

    #[test]
    fn theorem2_bound_monotone_in_memory(
        m in 32usize..512,
        n in 32usize..512,
        k in 32usize..512,
        p in 1usize..128,
    ) {
        use pebbles::bounds::theorem2_parallel_bound;
        let lo = theorem2_parallel_bound(m, n, k, p, 1 << 10);
        let hi = theorem2_parallel_bound(m, n, k, p, 1 << 20);
        prop_assert!(hi <= lo + 1e-9, "more memory must not raise the bound");
    }
}
