//! Property-based tests over the core invariants: random problems always
//! yield valid plans; random tile shapes always yield legal pebble schedules
//! whose measured I/O matches the closed form; random layouts always
//! round-trip.
//!
//! The container has no registry access, so instead of an external
//! property-testing crate the cases are drawn from a deterministic
//! splitmix64 generator — every run exercises the same reproducible sample.

use cosma::algorithm::even_range;
use cosma::api::{AlgoId, PlanError, RunSession};
use cosma::problem::MmmProblem;
use densemat::layout::{gather, scatter, BlockCyclic, BlockedLayout};
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::{run_spmd_with, ExecBackend};
use mpsim::machine::MachineSpec;
use mpsim::stats::Phase;
use pebbles::bounds::{theorem1_lower_bound, tiled_io};
use pebbles::game::validate_complete;
use pebbles::greedy::{tiled_capacity, tiled_moves};
use pebbles::mmm::MmmCdag;

/// Cases per property (mirrors the old proptest configuration).
const CASES: u64 = 48;

/// Deterministic splitmix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

#[test]
fn even_range_partitions_exactly() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let total = rng.range(1, 5000);
        let parts = rng.range(1, 64);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for idx in 0..parts {
            let r = even_range(total, parts, idx);
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            covered += r.len();
            // Balanced: sizes differ by at most one.
            assert!(r.len() >= total / parts);
            assert!(r.len() <= total.div_ceil(parts));
        }
        assert_eq!(covered, total);
        assert_eq!(prev_end, total);
    }
}

#[test]
fn cosma_plans_always_valid() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let m = rng.range(1, 80);
        let n = rng.range(1, 80);
        let k = rng.range(1, 80);
        let p = rng.range(1, 24);
        // Guarantee feasibility: enough memory for the full C tile plus
        // buffers, scaled up randomly.
        let s = m * n + 2 * (m + n) + 16 + rng.range(0, 4000);
        let prob = MmmProblem::new(m, n, k, p, s);
        let plan = RunSession::new(prob)
            .machine(CostModel::piz_daint_two_sided())
            .plan()
            .expect("feasible problem must plan");
        assert!(plan.validate().is_ok(), "{:?}", plan.validate());
        let total: u64 = plan.ranks.iter().map(|r| r.volume()).sum();
        assert_eq!(total, prob.volume());
    }
}

#[test]
fn carma_plans_cover_space() {
    let reg = baselines::registry();
    let model = CostModel::piz_daint_two_sided();
    let carma = reg.by_id(AlgoId::Carma).unwrap();
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let m = rng.range(1, 64);
        let n = rng.range(1, 64);
        let k = rng.range(1, 64);
        let p = 1usize << rng.range(0, 6);
        let prob = MmmProblem::new(m, n, k, p, 1 << 20);
        let plan = carma.plan(&prob, &model).unwrap();
        assert!(plan.validate_coverage().is_ok());
    }
}

/// DFS schedule invariants under random problems: the level-synchronous
/// sequential descent always yields a power-of-two leaf count, and giving
/// ranks more memory never adds DFS steps (monotone non-increasing in `S`).
#[test]
fn carma_dfs_leaf_count_invariants() {
    use baselines::carma::dfs_leaf_count;
    let mut rng = Rng::new(14);
    for _ in 0..CASES {
        let m = rng.range(8, 96);
        let n = rng.range(8, 96);
        let k = rng.range(8, 96);
        let p = 1usize << rng.range(0, 6);
        // Budgets from starved to ample, descending by random factors.
        let mut budgets: Vec<usize> = (0..4).map(|_| rng.range(64, 4 * m * n)).collect();
        budgets.sort_unstable_by(|a, b| b.cmp(a));
        let mut prev_leaves = 0usize;
        for s in budgets {
            let leaves = dfs_leaf_count(&MmmProblem::new(m, n, k, p, s));
            assert!(leaves.is_power_of_two(), "{m}x{n}x{k} p={p} S={s}: {leaves} leaves");
            assert!(
                leaves >= prev_leaves,
                "{m}x{n}x{k} p={p}: shrinking S from removed DFS steps ({prev_leaves} -> {leaves})"
            );
            prev_leaves = leaves;
        }
    }
}

/// Memory-starved CARMA on the event backend: for random problems whose
/// pure-BFS leaf working set exceeds a randomly drawn `S`, the streaming
/// executor completes under an *enforced* budget with `peak_mem_words ≤ S`,
/// plan-exact traffic and the right product.
#[test]
fn carma_streaming_respects_memory_on_event_backend() {
    use baselines::carma::dfs_leaf_count;
    use cosma::api::execute_boxed_with;
    use densemat::gemm::matmul;
    let carma = baselines::registry().by_id(AlgoId::Carma).unwrap();
    let model = CostModel::piz_daint_two_sided();
    let mut rng = Rng::new(15);
    let mut starved = 0usize;
    for _ in 0..12 {
        let m = rng.range(16, 56);
        let n = rng.range(16, 56);
        let k = rng.range(16, 56);
        let p = 1usize << rng.range(1, 4);
        // The pure-BFS leaf footprint of this instance: draw S at or below
        // it so most cases are memory-starved, but keep headroom for the
        // DFS descent to terminate by fitting.
        let ample = MmmProblem::new(m, n, k, p, 1 << 28);
        let bfs_footprint = carma
            .plan(&ample, &model)
            .unwrap()
            .ranks
            .iter()
            .map(|r| r.mem_words)
            .max()
            .unwrap() as usize;
        let s = rng.range(bfs_footprint.div_ceil(3).max(16), bfs_footprint.max(17) + 1);
        let prob = MmmProblem::new(m, n, k, p, s);
        let plan = carma.plan(&prob, &model).unwrap();
        assert!(plan.validate().is_ok(), "{m}x{n}x{k} p={p} S={s}: DFS plan must be memory-honest");
        starved += usize::from(dfs_leaf_count(&prob) > 1);
        let a = Matrix::deterministic(m, k, 81);
        let b = Matrix::deterministic(k, n, 82);
        let spec = MachineSpec::piz_daint_with_memory(p, s).enforcing_memory();
        let report = execute_boxed_with(carma.as_ref(), &plan, &spec, ExecBackend::event(), &a, &b)
            .unwrap_or_else(|e| panic!("{m}x{n}x{k} p={p} S={s}: {e}"));
        assert!(matmul(&a, &b).approx_eq(&report.c, 1e-9), "{m}x{n}x{k} p={p} S={s}: wrong product");
        for (r, st) in report.stats.iter().enumerate() {
            assert_eq!(
                st.total_recv(),
                plan.ranks[r].comm_words(),
                "{m}x{n}x{k} p={p} S={s}: rank {r} traffic"
            );
            assert!(st.peak_mem_words <= s as u64, "{m}x{n}x{k} p={p} S={s}: rank {r} peak");
        }
    }
    assert!(starved >= 6, "only {starved}/12 cases were memory-starved — weak sample");
}

#[test]
fn summa_plans_cover_space() {
    let reg = baselines::registry();
    let model = CostModel::piz_daint_two_sided();
    let summa = reg.by_id(AlgoId::Summa).unwrap();
    let mut rng = Rng::new(4);
    let mut cases = 0;
    while cases < CASES {
        let m = rng.range(2, 64);
        let n = rng.range(2, 64);
        let k = rng.range(2, 64);
        let p = rng.range(1, 17);
        // SUMMA needs a gm x gn = p grid no finer than the C matrix.
        if m * n < p {
            continue;
        }
        cases += 1;
        let prob = MmmProblem::new(m, n, k, p, 1 << 20);
        match summa.plan(&prob, &model) {
            Ok(plan) => assert!(plan.validate().is_ok()),
            // p may still not factor into gm <= m, gn <= n (e.g. p = 13,
            // m = 2): a reported infeasibility is acceptable, silence not.
            Err(e) => assert_eq!(e, PlanError::NoFeasibleGrid),
        }
    }
}

#[test]
fn tiled_pebbling_valid_and_io_exact() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let m = rng.range(1, 10);
        let n = rng.range(1, 10);
        let k = rng.range(1, 8);
        let a = rng.range(1, 5);
        let b = rng.range(1, 5);
        let g = MmmCdag::new(m, n, k);
        let moves = tiled_moves(&g, a, b);
        let io = validate_complete(g.graph(), tiled_capacity(a, b), &moves)
            .expect("generated schedule must be legal");
        assert_eq!(io, tiled_io(m, n, k, a, b));
        assert!(io as f64 >= theorem1_lower_bound(m, n, k, tiled_capacity(a, b)) - (m * n) as f64 - 1.0);
    }
}

#[test]
fn block_cyclic_roundtrip() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let rows = rng.range(1, 40);
        let cols = rng.range(1, 40);
        let rb = rng.range(1, 8);
        let cb = rng.range(1, 8);
        let pr = rng.range(1, 5);
        let pc = rng.range(1, 5);
        let m = Matrix::deterministic(rows, cols, 99);
        let bc = BlockCyclic::new(rows, cols, rb, cb, pr, pc);
        let locals = scatter(&bc, &m);
        assert_eq!(locals.iter().map(Vec::len).sum::<usize>(), rows * cols);
        let back = gather(&bc, &locals);
        assert_eq!(back, m);
    }
}

#[test]
fn blocked_layout_roundtrip() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let rows = rng.range(1, 40);
        let cols = rng.range(1, 40);
        let gr = rng.range(1, 6).min(rows);
        let gc = rng.range(1, 6).min(cols);
        let m = Matrix::deterministic(rows, cols, 7);
        let bl = BlockedLayout::even_grid(rows, cols, gr, gc);
        let back = gather(&bl, &scatter(&bl, &m));
        assert_eq!(back, m);
        // Every rank owns a contiguous block whose size is balanced.
        for r in 0..gr * gc {
            let (rs, cs) = bl.block_of(r).expect("one block per rank");
            assert!(rs.len() >= rows / gr && rs.len() <= rows.div_ceil(gr));
            assert!(cs.len() >= cols / gc && cs.len() <= cols.div_ceil(gc));
        }
    }
}

#[test]
fn gemm_kernels_agree() {
    use densemat::gemm::{gemm_naive, gemm_packed, gemm_parallel, gemm_tiled};
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let m = rng.range(1, 48);
        let n = rng.range(1, 48);
        let k = rng.range(1, 48);
        let threads = rng.range(1, 5);
        let a = Matrix::deterministic(m, k, 1);
        let b = Matrix::deterministic(k, n, 2);
        let mut c0 = Matrix::zeros(m, n);
        let mut c1 = Matrix::zeros(m, n);
        let mut c2 = Matrix::zeros(m, n);
        let mut c3 = Matrix::zeros(m, n);
        gemm_naive(&a, &b, &mut c0);
        gemm_tiled(&a, &b, &mut c1);
        gemm_parallel(&a, &b, &mut c2, threads);
        gemm_packed(&a, &b, &mut c3);
        assert!(c0.approx_eq(&c1, 1e-10));
        assert!(c0.approx_eq(&c2, 1e-10));
        // The default packed kernel keeps the naive k-order, so it agrees
        // bitwise, not just approximately.
        assert!(
            c0.as_slice().iter().zip(c3.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{m}x{n}x{k}: packed diverges bitwise from naive"
        );
    }
}

/// Shared scheduler workload for the no-deadlock/no-reorder properties:
/// send `msgs` messages along every offset, then receive them all and check
/// per-`(sender, tag)` FIFO delivery.
async fn offset_exchange(mut c: mpsim::RankComm, offs: &[usize], msgs: usize) -> bool {
    let p = c.size();
    for (t, &d) in offs.iter().enumerate() {
        let to = (c.rank() + d) % p;
        for s in 0..msgs {
            c.send(to, t as u64, vec![c.rank() as f64, s as f64], Phase::Other);
        }
    }
    let mut in_order = true;
    for (t, &d) in offs.iter().enumerate() {
        let from = (c.rank() + p - d) % p;
        for s in 0..msgs {
            let got = c.recv(from, t as u64, Phase::Other).await;
            in_order &= got == vec![from as f64, s as f64];
        }
    }
    c.barrier().await;
    in_order
}

/// The sharded and event schedulers under random world/worker-pool sizes:
/// every world completes (no deadlock — parked ranks must always yield
/// their worker slot / scheduler turn), and matched send/recv pairs are
/// delivered in send order per `(sender, tag)` even when ranks are parked
/// and resumed between messages.
#[test]
fn schedulers_never_deadlock_or_reorder() {
    let mut rng = Rng::new(10);
    for case in 0..16 {
        let p = rng.range(2, 48);
        let workers = rng.range(1, 9);
        let msgs = rng.range(1, 5);
        let offsets: Vec<usize> = (0..rng.range(1, 4)).map(|_| rng.range(1, p)).collect();
        let spec = MachineSpec::test_machine(p, 1000);
        let offs = &offsets;
        let backend = if case % 2 == 0 {
            ExecBackend::Sharded { workers }
        } else {
            ExecBackend::event()
        };
        let out = run_spmd_with(&spec, backend, |c| offset_exchange(c, offs, msgs))
            .expect("scheduled run must be accepted");
        assert!(
            out.results.iter().all(|&ok| ok),
            "{backend} p={p} msgs={msgs} offsets={offsets:?}: reordered delivery"
        );
    }
}

/// Random exchange patterns measure identically on all three executors: the
/// schedulers may interleave ranks differently, but results and every
/// per-rank counter must match the threaded baseline bit for bit.
#[test]
fn sharded_and_event_match_threaded_on_random_patterns() {
    let mut rng = Rng::new(11);
    for _ in 0..12 {
        let p = rng.range(2, 32);
        let workers = rng.range(1, 6);
        let words = rng.range(1, 40);
        let rounds = rng.range(1, 4);
        let spec = MachineSpec::test_machine(p, 1000);
        let pattern = |mut c: mpsim::RankComm| async move {
            let p = c.size();
            let mut acc = 0.0;
            for r in 0..rounds {
                let dst = (c.rank() + r + 1) % p;
                let src = (c.rank() + p - ((r + 1) % p)) % p;
                let got = c.sendrecv(dst, src, r as u64, vec![c.rank() as f64; words], Phase::Other).await;
                acc += got.iter().sum::<f64>();
                c.barrier().await;
            }
            acc
        };
        let threaded = run_spmd_with(&spec, ExecBackend::Threaded, pattern).unwrap();
        let sharded = run_spmd_with(&spec, ExecBackend::Sharded { workers }, pattern).unwrap();
        let event = run_spmd_with(&spec, ExecBackend::event(), pattern).unwrap();
        assert_eq!(threaded.results, sharded.results, "p={p} workers={workers}");
        assert_eq!(threaded.stats, sharded.stats, "p={p} workers={workers}");
        assert_eq!(threaded.results, event.results, "event results diverge at p={p}");
        // Counters match bit for bit; the event backend additionally drives
        // the virtual clock, which the blocking baselines do not have.
        assert_eq!(counters(&threaded.stats), counters(&event.stats), "event counters diverge at p={p}");
    }
}

/// Strip the virtual-clock fields for counter comparisons between backends
/// that do (event) and do not (threaded/sharded) keep a clock.
fn counters(stats: &[mpsim::RankStats]) -> Vec<mpsim::RankStats> {
    stats.iter().map(|s| s.sans_time()).collect()
}

/// The event backend under random world sizes and message orders: random
/// send permutations (a splitmix64 shuffle per rank) must still produce the
/// threaded backend's exact results and counters — scheduling and send
/// interleaving never change what is computed or measured.
#[test]
fn event_matches_threaded_under_random_message_orders() {
    let mut rng = Rng::new(12);
    for _ in 0..12 {
        let p = rng.range(2, 40);
        let words = rng.range(1, 16);
        let shuffle_seed = rng.next();
        let spec = MachineSpec::test_machine(p, 1000);
        let pattern = move |mut c: mpsim::RankComm| async move {
            let p = c.size();
            // Send to every peer in a per-rank pseudo-random order...
            let mut order: Vec<usize> = (0..p).collect();
            let mut r = Rng::new(shuffle_seed ^ c.rank() as u64);
            for i in (1..p).rev() {
                order.swap(i, r.range(0, i + 1));
            }
            for &to in &order {
                c.send(to, 5, vec![c.rank() as f64; words], Phase::Other);
            }
            // ...but receive in rank order: matching is by (source, tag),
            // so arrival order must not matter.
            let mut acc = 0.0;
            for from in 0..p {
                acc += c.recv(from, 5, Phase::Other).await[0];
            }
            c.barrier().await;
            acc
        };
        let threaded = run_spmd_with(&spec, ExecBackend::Threaded, pattern).unwrap();
        let event = run_spmd_with(&spec, ExecBackend::event(), pattern).unwrap();
        assert_eq!(threaded.results, event.results, "p={p} words={words}");
        assert_eq!(counters(&threaded.stats), counters(&event.stats), "p={p} words={words}");
    }
}

/// Scheduler fairness: the event executor polls ranks in virtual-time order
/// with FIFO tie-breaking, so a ready rank is never starved — under random
/// worlds, every ready-queue admission is polled exactly once, a poll never
/// outruns the admissions, and the whole schedule is deterministic (two
/// identical runs produce bit-identical traces).
#[test]
fn event_scheduler_never_starves_a_ready_rank() {
    use mpsim::{run_spmd_event_traced, SchedEvent};
    let mut rng = Rng::new(13);
    for _ in 0..12 {
        let p = rng.range(2, 40);
        let rounds = rng.range(1, 4);
        let spec = MachineSpec::test_machine(p, 1000);
        let body = |mut c: mpsim::RankComm| async move {
            let p = c.size();
            for r in 0..rounds {
                let dst = (c.rank() + r + 1) % p;
                let src = (c.rank() + p - ((r + 1) % p)) % p;
                c.sendrecv(dst, src, r as u64, vec![1.0], Phase::Other).await;
            }
            c.barrier().await;
            c.rank()
        };
        let (out, trace) = run_spmd_event_traced(&spec, body);
        assert_eq!(out.results, (0..p).collect::<Vec<_>>());
        let mut enqueues: Vec<usize> = Vec::new();
        let mut polls: Vec<usize> = Vec::new();
        // Every poll consumes a prior admission: the i-th poll can only
        // happen after the i-th enqueue appeared in the trace.
        for e in &trace {
            match e {
                SchedEvent::Enqueue(r) => enqueues.push(*r),
                SchedEvent::Poll(r) => {
                    polls.push(*r);
                    assert!(polls.len() <= enqueues.len(), "poll of a rank that was never admitted");
                }
            }
        }
        // No starvation and no phantom polls: polls are a permutation of
        // admissions (the min-heap reorders by virtual time, never drops).
        let mut enq_sorted = enqueues.clone();
        let mut polls_sorted = polls.clone();
        enq_sorted.sort_unstable();
        polls_sorted.sort_unstable();
        assert_eq!(enq_sorted, polls_sorted, "p={p} rounds={rounds}: admissions and polls diverge");
        // Determinism: the virtual-time schedule is a pure function of the
        // workload.
        let (out2, trace2) = run_spmd_event_traced(&spec, body);
        assert_eq!(out.results, out2.results);
        assert_eq!(trace, trace2, "p={p} rounds={rounds}: scheduler trace must be deterministic");
    }
}

/// The virtual clock under random exchange patterns: monotone per rank
/// (every component non-negative, finish time = compute + exposed),
/// deterministic across repeated runs, and overlap-on is never slower than
/// overlap-off while never beating the `max(compute, total comm)` lower
/// bound — `simulate_rounds`' bound test at the execution level, with the
/// comm side reconstructed from the measured counters.
#[test]
fn virtual_clock_monotone_deterministic_and_overlap_bounded() {
    let mut rng = Rng::new(16);
    for _ in 0..12 {
        let p = rng.range(2, 24);
        let words = rng.range(1, 64);
        let rounds = rng.range(1, 5);
        let flops = rng.range(0, 40_000) as u64;
        let spec = MachineSpec::test_machine(p, 1000);
        let body = move |mut c: mpsim::RankComm| async move {
            let p = c.size();
            for r in 0..rounds {
                let dst = (c.rank() + r + 1) % p;
                let src = (c.rank() + p - ((r + 1) % p)) % p;
                c.sendrecv(dst, src, r as u64, vec![1.0; words], Phase::Other).await;
                c.record_flops(flops);
            }
            c.rank()
        };
        let on = run_spmd_with(&spec, ExecBackend::event(), body).unwrap();
        let on2 = run_spmd_with(&spec, ExecBackend::event(), body).unwrap();
        let off = run_spmd_with(&spec.clone().with_overlap(false), ExecBackend::event(), body).unwrap();
        assert_eq!(on.stats, on2.stats, "p={p}: virtual times must be deterministic");
        let model = &spec.cost;
        for (r, (st_on, st_off)) in on.stats.iter().zip(&off.stats).enumerate() {
            for (st, t) in [(st_on, st_on.time), (st_off, st_off.time)] {
                assert!(
                    t.compute_s >= 0.0 && t.exposed_comm_s >= 0.0 && t.total_comm_s >= t.exposed_comm_s,
                    "p={p} rank {r}: clock ran backwards ({t:?})"
                );
                // Recording completeness: total comm accounts at least every
                // received transfer once (alpha per message + beta per word,
                // reconstructed from the backend-exact counters), and the
                // compute side is exactly the recorded flops under gamma — a
                // missed record_comm_time/record_compute_time would fail
                // here.
                assert!(
                    t.total_comm_s + 1e-12 >= model.comm_time(st.total_recv(), st.msgs_recv),
                    "p={p} rank {r}: total comm {t:?} lost a transfer"
                );
                assert!(
                    (t.compute_s - model.compute_time(st.flops)).abs() <= 1e-12 * t.compute_s.max(1.0),
                    "p={p} rank {r}: compute time disagrees with the flops counter"
                );
            }
            // Overlap can only help...
            assert!(
                st_on.time.total_s() <= st_off.time.total_s() + 1e-12,
                "p={p} rank {r}: overlap-on slower than overlap-off"
            );
            // ...but never beats the serial lower bound: all compute, and
            // all received transfer time on the rank's single incoming link
            // (counters are backend-exact, so the comm side is exactly
            // alpha * msgs + beta * words).
            let comm_s = model.comm_time(st_on.total_recv(), st_on.msgs_recv);
            let lower = st_on.time.compute_s.max(comm_s);
            assert!(
                st_on.time.total_s() + 1e-12 >= lower,
                "p={p} rank {r}: measured {} s beats the max(compute, comm) bound {} s",
                st_on.time.total_s(),
                lower
            );
        }
    }
}

/// The auto-planner against brute force: for random problems and random
/// candidate subsets, [`serve::AutoPlanner::select`] must return exactly the
/// exhaustive argmin of planned α-β-γ time over the feasible candidates —
/// same winner, bitwise-same planned time, same plan — and must report an
/// error exactly when no candidate is feasible.
#[test]
fn auto_planner_selection_is_the_exhaustive_argmin() {
    use serve::{AlgoChoice, AutoPlanner};
    let reg = baselines::registry();
    let planner = AutoPlanner::new(reg.clone());
    let model = CostModel::piz_daint_two_sided();
    let mut rng = Rng::new(17);
    let mut feasible_cases = 0usize;
    for _ in 0..CASES {
        let m = rng.range(4, 96);
        let n = rng.range(4, 96);
        let k = rng.range(4, 96);
        let p = rng.range(1, 33);
        let s = m * n + 2 * (m + n) + 16 + rng.range(0, 1 << 14);
        let prob = MmmProblem::new(m, n, k, p, s);
        // Random candidate subset (sometimes empty, sometimes everything).
        let subset: Vec<AlgoId> = AlgoId::ALL.into_iter().filter(|_| rng.next().is_multiple_of(2)).collect();
        let choice = if rng.next().is_multiple_of(4) {
            AlgoChoice::Auto
        } else {
            AlgoChoice::Among(subset)
        };

        // Brute force: plan every candidate through the same gauntlet
        // RunSession applies, score with the cost model, keep the strict
        // argmin (earliest candidate wins ties).
        let mut best: Option<(AlgoId, f64, cosma::plan::DistPlan)> = None;
        for id in choice.candidates() {
            let Ok(algo) = reg.by_id(id) else { continue };
            if algo.supports(&prob).is_err() {
                continue;
            }
            let Ok(plan) = algo.plan(&prob, &model) else {
                continue;
            };
            if plan.validate_coverage().is_err() {
                continue;
            }
            let t = plan.simulate(&model, true).time_s;
            if best.as_ref().is_none_or(|(_, bt, _)| t < *bt) {
                best = Some((id, t, plan));
            }
        }

        match (planner.select(&prob, &model, true, &choice), best) {
            (Ok(planned), Some((algo, t, plan))) => {
                feasible_cases += 1;
                assert_eq!(planned.selection.algo, algo, "{m}x{n}x{k} p={p} {choice:?}");
                assert_eq!(
                    planned.selection.planned_time_s.to_bits(),
                    t.to_bits(),
                    "{m}x{n}x{k} p={p}: planned time must be bitwise-reproducible"
                );
                assert_eq!(*planned.plan, plan, "{m}x{n}x{k} p={p}: plan diverged");
                if let Some(ru) = planned.selection.runner_up {
                    assert!(ru.planned_time_s >= planned.selection.planned_time_s);
                    assert_ne!(ru.algo, planned.selection.algo);
                }
            }
            (Err(_), None) => {}
            (got, want) => panic!(
                "{m}x{n}x{k} p={p} {choice:?}: planner and brute force disagree on \
                 feasibility (planner: {}, brute force: {})",
                if got.is_ok() { "Ok" } else { "Err" },
                if want.is_some() { "Some" } else { "None" },
            ),
        }
    }
    assert!(feasible_cases >= CASES as usize / 2, "only {feasible_cases} feasible — weak sample");
}

/// Plan-cache exactness: for random requests, a cache hit returns a plan and
/// selection bitwise-identical to planning cold — planning is a pure
/// function of the [`serve::PlanKey`], so caching may never change what a
/// request gets back.
#[test]
fn plan_cache_hits_are_bitwise_identical_to_cold_planning() {
    use serve::{AlgoChoice, AutoPlanner, PlanCache, PlanKey};
    let planner = AutoPlanner::new(baselines::registry());
    let model = CostModel::piz_daint_two_sided();
    let cache = PlanCache::new(4, 64);
    let mut rng = Rng::new(18);
    for _ in 0..CASES {
        let m = rng.range(4, 80);
        let n = rng.range(4, 80);
        let k = rng.range(4, 80);
        let p = 1usize << rng.range(0, 6);
        let s = m * n + 2 * (m + n) + 16 + rng.range(0, 1 << 13);
        let prob = MmmProblem::new(m, n, k, p, s);
        let choice = AlgoChoice::Auto;
        let key = PlanKey::try_new(
            &prob,
            &model,
            true,
            None,
            &choice,
            &mpsim::Topology::Flat,
            mpsim::Placement::Block,
        )
        .expect("finite model");

        // Cold: a private selection, no cache involved.
        let cold = planner.select(&prob, &model, true, &choice).expect("ample memory");
        // Through the cache: first call may insert, second must hit.
        let (first, _) = cache
            .get_or_try_insert_with(key, || planner.select(&prob, &model, true, &choice))
            .expect("ample memory");
        let hit = cache.get(&key).expect("just inserted");

        // The hit is the same allocation as the insert, and both are
        // bitwise-identical to the cold plan.
        assert!(std::sync::Arc::ptr_eq(&first, &hit), "{m}x{n}x{k} p={p}: hit reallocated");
        assert_eq!(hit.selection, cold.selection, "{m}x{n}x{k} p={p}: selection diverged");
        assert_eq!(*hit.plan, *cold.plan, "{m}x{n}x{k} p={p}: cached plan diverged from cold");
        assert_eq!(
            hit.selection.planned_time_s.to_bits(),
            cold.selection.planned_time_s.to_bits(),
            "{m}x{n}x{k} p={p}: planned time not bitwise-stable"
        );
    }
    let stats = cache.stats();
    assert!(stats.hits >= CASES, "every case must hit at least once: {stats:?}");
}

/// Topology-aware contention under random exchange patterns, three
/// properties at once:
///
/// 1. The default machine (no topology set) is *bitwise* the explicit
///    `Flat`/`Block` machine — adding the topology layer must not move the
///    virtual clock of existing flat-world users by even one ulp.
/// 2. A congested fat tree never decreases any rank's virtual time relative
///    to flat, component by component, while leaving every non-time counter
///    (words, messages, flops, results) untouched — contention reprices
///    transfers, it never reroutes or drops them.
/// 3. Shared-link charges are deterministic: two identical fat-tree runs
///    (including a scattered round-robin placement) agree bitwise on every
///    rank's stats, times included.
#[test]
fn contention_prices_flat_bitwise_and_fat_monotone_deterministic() {
    use mpsim::machine::{Placement, Topology};
    let mut rng = Rng::new(21);
    for _ in 0..12 {
        let p = rng.range(2, 32);
        let words = rng.range(1, 48);
        let rounds = rng.range(1, 5);
        let flops = rng.range(0, 30_000) as u64;
        let body = move |mut c: mpsim::RankComm| async move {
            let p = c.size();
            for r in 0..rounds {
                let dst = (c.rank() + r + 1) % p;
                let src = (c.rank() + p - ((r + 1) % p)) % p;
                c.sendrecv(dst, src, r as u64, vec![1.0; words], Phase::Other).await;
                c.record_flops(flops);
            }
            c.barrier().await;
            c.rank()
        };
        let spec = MachineSpec::test_machine(p, 1000);
        let default = run_spmd_with(&spec, ExecBackend::event(), body).unwrap();
        let explicit_flat = spec.clone().with_topology(Topology::Flat).with_placement(Placement::Block);
        let flat = run_spmd_with(&explicit_flat, ExecBackend::event(), body).unwrap();
        assert_eq!(default.results, flat.results, "p={p}");
        assert_eq!(
            default.stats, flat.stats,
            "p={p}: explicit Flat/Block must be bitwise the default machine"
        );
        let fat_spec = spec.clone().with_topology(Topology::congested_fat_tree());
        let fat = run_spmd_with(&fat_spec, ExecBackend::event(), body).unwrap();
        assert_eq!(fat.results, flat.results, "p={p}: topology changed a computed result");
        for (r, (ff, tt)) in flat.stats.iter().zip(&fat.stats).enumerate() {
            assert_eq!(ff.sans_time(), tt.sans_time(), "p={p} rank {r}: topology changed a traffic counter");
            assert!(
                tt.time.total_comm_s >= ff.time.total_comm_s - 1e-15
                    && tt.time.exposed_comm_s >= ff.time.exposed_comm_s - 1e-15
                    && tt.time.total_s() >= ff.time.total_s() - 1e-15,
                "p={p} rank {r}: contention decreased a time (flat {:?}, fat {:?})",
                ff.time,
                tt.time
            );
        }
        let fat_rr = fat_spec.clone().with_placement(Placement::RoundRobin);
        let a = run_spmd_with(&fat_rr, ExecBackend::event(), body).unwrap();
        let b = run_spmd_with(&fat_rr, ExecBackend::event(), body).unwrap();
        assert_eq!(a.results, b.results, "p={p}");
        assert_eq!(a.stats, b.stats, "p={p}: fat-tree link charges must be deterministic");
    }
}

/// The parallel event scheduler is an implementation detail of wall-clock:
/// under randomized worlds, workloads, overlap modes, and thread counts,
/// every run's results *and* full per-rank stats — traffic counters and the
/// `TimeBreakdown` virtual clock — are bitwise-identical to the
/// single-threaded scheduler. Every third case uses an antipodal exchange
/// (`rank ↔ rank + p/2`) so with two regions all traffic crosses the region
/// boundary, and shared-link topologies exercise the sequential-fallback
/// clamp on the same equality.
#[test]
fn parallel_scheduler_matches_single_thread_bitwise() {
    use mpsim::machine::Topology;
    let mut rng = Rng::new(23);
    for case in 0..16 {
        let p = rng.range(4, 40);
        let words = rng.range(1, 32);
        let rounds = rng.range(1, 4);
        let flops = rng.range(0, 20_000) as u64;
        let threads = rng.range(2, 9);
        let overlap = rng.next().is_multiple_of(2);
        let cross_region_heavy = case % 3 == 0;
        let body = move |mut c: mpsim::RankComm| async move {
            let p = c.size();
            let mut acc = 0.0;
            for r in 0..rounds {
                let off = if cross_region_heavy { p / 2 } else { r + 1 };
                let dst = (c.rank() + off) % p;
                let src = (c.rank() + p - (off % p)) % p;
                let got = c.sendrecv(dst, src, r as u64, vec![c.rank() as f64; words], Phase::Other).await;
                acc += got.iter().sum::<f64>();
                c.record_flops(flops);
            }
            c.barrier().await;
            acc
        };
        let topology = match case % 4 {
            3 => Topology::congested_fat_tree(), // clamps to the sequential engine
            _ => Topology::Flat,
        };
        let spec = MachineSpec::test_machine(p, 1000).with_overlap(overlap).with_topology(topology);
        let single = run_spmd_with(&spec, ExecBackend::event(), body).unwrap();
        let par = run_spmd_with(&spec, ExecBackend::Event { threads }, body).unwrap();
        assert_eq!(single.results, par.results, "p={p} threads={threads} case={case}");
        assert_eq!(
            single.stats, par.stats,
            "p={p} threads={threads} overlap={overlap} case={case}: \
             parallel scheduler stats must be bitwise-identical, times included"
        );
    }
}

/// Buffer-reuse arenas are invisible (the PR-10 contract): executing a
/// planned algorithm with pooling enabled and disabled produces
/// bitwise-identical products and per-rank stats on all three executors —
/// the arena only changes where bytes live, never what they hold or what
/// the clock reads. The pool counters (the observability side) must show
/// real recycling on enough pooled runs, and a disabled arena must never
/// hit or park.
#[test]
fn buffer_pooling_is_bitwise_invisible_across_backends() {
    use cosma::api::execute_boxed_with;
    let reg = baselines::registry();
    let model = CostModel::piz_daint_two_sided();
    let mut rng = Rng::new(0xB0);
    let mut recycled = 0usize;
    let mut runs = 0usize;
    for case in 0..9 {
        let m = rng.range(8, 56);
        let n = rng.range(8, 56);
        let k = rng.range(8, 56);
        let p = 1usize << rng.range(1, 4);
        let algo = reg
            .by_id(match case % 3 {
                0 => AlgoId::Cosma,
                1 => AlgoId::Carma,
                _ => AlgoId::Summa,
            })
            .unwrap();
        let prob = MmmProblem::new(m, n, k, p, 1 << 20);
        if algo.supports(&prob).is_err() {
            continue;
        }
        let plan = algo.plan(&prob, &model).unwrap();
        let a = Matrix::deterministic(m, k, 31);
        let b = Matrix::deterministic(k, n, 32);
        for backend in [
            ExecBackend::Threaded,
            ExecBackend::Sharded { workers: 3 },
            ExecBackend::event(),
        ] {
            let spec = MachineSpec::piz_daint_with_memory(p, 1 << 20);
            let on = execute_boxed_with(algo.as_ref(), &plan, &spec, backend, &a, &b).unwrap();
            let off =
                execute_boxed_with(algo.as_ref(), &plan, &spec.clone().with_pooling(false), backend, &a, &b)
                    .unwrap();
            let ctx = format!("{} {m}x{n}x{k} p={p} {backend}", algo.id());
            assert!(
                on.c.as_slice()
                    .iter()
                    .zip(off.c.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{ctx}: recycling changed a product bit"
            );
            assert_eq!(on.stats, off.stats, "{ctx}: recycling moved a counter or the clock");
            assert_eq!(off.pool.hits, 0, "{ctx}: a disabled arena must never recycle");
            assert_eq!(off.pool.returns, 0, "{ctx}: a disabled arena must never park");
            runs += 1;
            recycled += usize::from(on.pool.hits > 0);
        }
    }
    assert!(runs >= 18, "only {runs} pooled-vs-unpooled runs — weak sample");
    assert!(recycled * 2 >= runs, "only {recycled}/{runs} pooled runs recycled — arena not engaged");
}

#[test]
fn theorem2_bound_monotone_in_memory() {
    use pebbles::bounds::theorem2_parallel_bound;
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let m = rng.range(32, 512);
        let n = rng.range(32, 512);
        let k = rng.range(32, 512);
        let p = rng.range(1, 128);
        let lo = theorem2_parallel_bound(m, n, k, p, 1 << 10);
        let hi = theorem2_parallel_bound(m, n, k, p, 1 << 20);
        assert!(hi <= lo + 1e-9, "more memory must not raise the bound");
    }
}

/// Fault determinism (the PR-9 contract): the same seeded `FaultPlan` must
/// produce the *identical* outcome on the sequential and the 4-thread event
/// scheduler — same typed failure when the world wedges, bitwise-identical
/// stats when it completes — and a quiescent plan must be a bitwise no-op
/// against the fault-free clock.
#[test]
fn fault_plans_behave_identically_across_event_thread_counts() {
    use mpsim::{try_run_spmd_event, try_run_spmd_event_threads, FaultPlan};
    let mut rng = Rng::new(0xFA);
    let mut failures = 0;
    for case in 0..10 {
        let p = rng.range(8, 40);
        let kills = rng.range(0, 3);
        let dropping = rng.range(0, 2) == 1;
        let seed = rng.next();
        let mut plan = FaultPlan::new(seed);
        if kills > 0 {
            plan = plan.kill_exactly(kills, 8e-6);
        }
        if dropping {
            plan = plan.drop_rate(0.05);
        }
        let body = |mut c: mpsim::RankComm| async move {
            let p = c.size();
            for _ in 0..12 {
                c.record_flops(1000);
                let right = (c.rank() + 1) % p;
                let left = (c.rank() + p - 1) % p;
                c.sendrecv(right, left, 1, vec![c.rank() as f64; 2], Phase::Other).await;
                c.barrier().await;
            }
        };
        let armed = MachineSpec::test_machine(p, 1000).with_faults(plan);
        let seq = try_run_spmd_event(&armed, body);
        let par = try_run_spmd_event_threads(&armed, 4, body);
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.stats, b.stats, "case {case}: completed stats must be bitwise-identical");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "case {case}: typed failures must be identical");
                failures += 1;
            }
            (a, b) => panic!("case {case}: engines disagree on survival: {a:?} vs {b:?}"),
        }
        if kills == 0 && !dropping {
            // Quiescent plan: bitwise no-op against the fault-free world.
            let bare = MachineSpec::test_machine(p, 1000);
            let clean = try_run_spmd_event(&bare, body).unwrap();
            let quiet = try_run_spmd_event(&armed, body).unwrap();
            assert_eq!(clean.stats, quiet.stats, "case {case}: quiescent plan perturbed the clock");
        }
    }
    assert!(failures > 0, "the sample must exercise at least one injected failure");
}
