//! The §7.6 compatibility story as an end-to-end workflow: matrices arrive
//! in the ScaLAPACK block-cyclic format, are re-arranged into COSMA's
//! blocked layout (with the relayout traffic measured), multiplied by
//! COSMA, and the result is exported back to a block-cyclic layout.

use cosma::api::RunSession;
use cosma::grid::Grid3;
use cosma::layout::cosma_layouts;
use cosma::problem::MmmProblem;
use densemat::gemm::matmul;
use densemat::layout::{gather, relayout_words, scatter, BlockCyclic, Distribution};
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;

#[test]
fn block_cyclic_to_cosma_roundtrip_with_multiply() {
    let prob = MmmProblem::new(24, 20, 28, 8, 4096);
    let session = RunSession::new(prob).machine(CostModel::piz_daint_two_sided());
    let dplan = session.plan().expect("plan");
    let grid = Grid3 {
        gm: dplan.grid[0],
        gn: dplan.grid[1],
        gk: dplan.grid[2],
    };

    // 1. Inputs arrive block-cyclic (a 2x4 process grid with 4x4 blocks).
    let a = Matrix::deterministic(prob.m, prob.k, 71);
    let b = Matrix::deterministic(prob.k, prob.n, 72);
    let bc_a = BlockCyclic::new(prob.m, prob.k, 4, 4, 2, 4);
    let bc_b = BlockCyclic::new(prob.k, prob.n, 4, 4, 2, 4);
    let a_locals = scatter(&bc_a, &a);
    let b_locals = scatter(&bc_b, &b);

    // 2. Measure the preprocessing relayout into COSMA's induced layouts.
    let (la, lb, lc) = cosma_layouts(&prob, grid);
    let moved_a = relayout_words(&bc_a, &la);
    let moved_b = relayout_words(&bc_b, &lb);
    assert!(moved_a > 0 && moved_b > 0, "layouts differ, words must move");
    assert!(moved_a <= (prob.m * prob.k) as u64);
    assert!(moved_b <= (prob.k * prob.n) as u64);

    // 3. The relayout is content-preserving: gather from block-cyclic and
    // re-scatter into the COSMA layouts, then verify against the originals.
    let a_global = gather(&bc_a, &a_locals);
    let b_global = gather(&bc_b, &b_locals);
    assert_eq!(a_global, a);
    assert_eq!(b_global, b);
    let a_cosma_locals = scatter(&la, &a_global);
    assert_eq!(a_cosma_locals.iter().map(Vec::len).sum::<usize>(), prob.m * prob.k);

    // 4. Multiply with COSMA through the session.
    let c = session.execute(&a_global, &b_global).expect("execution").c;
    assert!(matmul(&a, &b).approx_eq(&c, 1e-9));

    // 5. Export C back to a block-cyclic layout and verify the round trip.
    let bc_c = BlockCyclic::new(prob.m, prob.n, 4, 4, 2, 4);
    let c_export = scatter(&bc_c, &c);
    let c_back = gather(&bc_c, &c_export);
    assert_eq!(c_back, c);
    // The export cost from COSMA's gathered C layout is also measurable.
    let moved_c = relayout_words(&lc, &bc_c);
    assert!(moved_c <= (prob.m * prob.n) as u64);
}

#[test]
fn relayout_cost_scales_with_layout_mismatch() {
    // An already-blocked layout should cost much less to adapt than a
    // finely cyclic one.
    let prob = MmmProblem::new(32, 32, 32, 4, 8192);
    let dplan = RunSession::new(prob).machine(CostModel::piz_daint_two_sided()).plan().unwrap();
    let grid = Grid3 {
        gm: dplan.grid[0],
        gn: dplan.grid[1],
        gk: dplan.grid[2],
    };
    let (la, _, _) = cosma_layouts(&prob, grid);
    // Fine cyclic (1x1 blocks) vs coarse blocked (16x16 blocks).
    let fine = BlockCyclic::new(prob.m, prob.k, 1, 1, 2, 2);
    let coarse = BlockCyclic::new(prob.m, prob.k, 16, 16, 2, 2);
    let moved_fine = relayout_words(&fine, &la);
    let moved_coarse = relayout_words(&coarse, &la);
    assert!(moved_coarse < moved_fine, "coarse {moved_coarse} should beat fine {moved_fine}");
}

#[test]
fn cosma_layouts_cover_each_matrix_exactly() {
    let prob = MmmProblem::new(18, 22, 26, 6, 4096);
    let dplan = RunSession::new(prob).machine(CostModel::piz_daint_two_sided()).plan().unwrap();
    let grid = Grid3 {
        gm: dplan.grid[0],
        gn: dplan.grid[1],
        gk: dplan.grid[2],
    };
    let (la, lb, lc) = cosma_layouts(&prob, grid);
    let sum = |d: &dyn Distribution| -> usize { (0..prob.p).map(|r| d.local_len(r)).sum() };
    assert_eq!(sum(&la), prob.m * prob.k);
    assert_eq!(sum(&lb), prob.k * prob.n);
    assert_eq!(sum(&lc), prob.m * prob.n);
}
