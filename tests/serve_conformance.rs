//! Conformance of the serving layer (`crates/serve`) against direct
//! `RunSession` execution: a mixed multi-tenant stream served concurrently
//! must be observationally identical — bit for bit — to planning and
//! executing each job by hand, one at a time.
//!
//! This is the end-to-end guarantee the serve crate rests on: planning is a
//! pure function of the request (so cached plans are exact), and the three
//! executors are conformant (so a world run on the shared scheduler pool
//! among many tenants computes exactly what it computes alone).

use bench::serve_bench::{mixed_stream, unique_combos};
use cosma::api::{AlgoId, RunSession};
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::ExecBackend;
use serve::{AutoPlanner, FaultPlan, JobRequest, RetryPolicy, Server, ServerConfig};

/// A ≥64-job mixed stream (repeat + unique plan keys) through a concurrent
/// [`Server`]: every `JobResult` matches a serial [`RunSession`] run of the
/// same job bitwise, at least three different algorithms are auto-selected,
/// and the plan cache absorbs the key repeats.
#[test]
fn concurrent_stream_matches_serial_run_sessions_bitwise() {
    let n_jobs = 64;
    let jobs = mixed_stream(n_jobs, None);
    assert!(unique_combos().len() < n_jobs, "the stream must repeat plan keys");

    let config = ServerConfig {
        drivers: 4,
        ..ServerConfig::default()
    };
    let server = Server::new(baselines::registry(), config).unwrap();
    let served = server.run_batch(jobs.clone());
    assert_eq!(served.len(), n_jobs);

    // The serial reference: plan and execute every job by hand with a fresh
    // auto-planner and a private RunSession — no serve crate on this path
    // beyond the selection rule itself.
    let model = CostModel::piz_daint_two_sided();
    let planner = AutoPlanner::new(baselines::registry());
    let mut selected: Vec<AlgoId> = Vec::new();
    for (job, result) in jobs.iter().zip(&served) {
        assert_eq!(job.id, result.id, "run_batch must return results in id order");
        let out = result.outcome.as_ref().expect("the mixed stream is feasible by construction");

        let reference = planner.select(&job.prob, &model, job.overlap, &job.choice).expect("feasible");
        assert_eq!(out.selection, reference.selection, "job {}: selection diverged", job.id);
        assert_eq!(*out.plan, *reference.plan, "job {}: plan diverged", job.id);

        let report = RunSession::new(job.prob)
            .registry(baselines::registry())
            .algorithm(reference.selection.algo)
            .machine(model)
            .overlap(job.overlap)
            .exec_backend(ExecBackend::auto(job.prob.p))
            .execute(&job.a, &job.b)
            .expect("serial reference run");
        assert_eq!(out.report.c, report.c, "job {}: product diverged from serial", job.id);
        assert_eq!(out.report.stats, report.stats, "job {}: counters diverged from serial", job.id);

        if !selected.contains(&out.selection.algo) {
            selected.push(out.selection.algo);
        }
    }

    assert!(selected.len() >= 3, "want >= 3 algorithms auto-selected, got {selected:?}");
    let report = server.shutdown();
    assert!(report.undelivered.is_empty(), "the batch already collected every result");
    let stats = report.cache;
    assert!(stats.hit_rate() > 0.0, "key repeats must hit the cache: {stats:?}");
    assert_eq!(stats.hits + stats.misses, n_jobs as u64);
}

/// The same stream pinned to the event backend: virtual-clock execution
/// through the server agrees with private event runs, including the
/// per-rank α-β-γ times (event worlds interleave on the driver threads but
/// never share scheduler state).
#[test]
fn event_backend_stream_matches_serial_including_virtual_time() {
    let n_jobs = 24;
    let jobs = mixed_stream(n_jobs, Some(ExecBackend::event()));
    let server = Server::new(baselines::registry(), ServerConfig::default()).unwrap();
    let served = server.run_batch(jobs.clone());

    let model = CostModel::piz_daint_two_sided();
    let planner = AutoPlanner::new(baselines::registry());
    for (job, result) in jobs.iter().zip(&served) {
        let out = result.outcome.as_ref().expect("feasible stream");
        let reference = planner.select(&job.prob, &model, job.overlap, &job.choice).expect("feasible");
        let report = RunSession::new(job.prob)
            .registry(baselines::registry())
            .algorithm(reference.selection.algo)
            .machine(model)
            .overlap(job.overlap)
            .exec_backend(ExecBackend::event())
            .execute(&job.a, &job.b)
            .expect("serial event run");
        assert_eq!(out.report.c, report.c, "job {}: product diverged", job.id);
        // Full stats equality: the event backend's virtual clock is part of
        // the contract, not stripped.
        assert_eq!(out.report.stats, report.stats, "job {}: stats diverged", job.id);
    }
}

/// The PR-9 recovery contract end-to-end: a seeded `FaultPlan` fells 15 of
/// 64 ranks mid-run; the retry policy replans for the surviving p′ = 49 —
/// a rank count only grid fitting handles gracefully (not a power of two,
/// not a perfect square) — and the recovered job's product *and per-rank
/// virtual-clock stats* are bitwise-identical to a fresh p′ = 49 run of the
/// same operands through the same pipeline.
#[test]
fn fault_recovery_replans_survivors_and_matches_fresh_run_bitwise() {
    let prob = MmmProblem::new(96, 80, 112, 64, 1 << 14);
    let a = Matrix::deterministic(prob.m, prob.k, 5);
    let b = Matrix::deterministic(prob.k, prob.n, 6);
    let server = Server::new(baselines::registry(), ServerConfig::default()).unwrap();

    // Derive the fault horizon from a clean clocked run, so the scheduled
    // deaths land squarely mid-run whatever the machine model says.
    let clean = server.run_sync(JobRequest::new(0, prob, a.clone(), b.clone()).backend(ExecBackend::event()));
    let t = clean.outcome.expect("clean run").report.measured_time_s();
    assert!(t > 0.0);

    let plan = FaultPlan::new(2024).kill_exactly(15, t / 2.0);
    assert_eq!(plan.survivors(64), 49);
    let recovered = server.run_sync(
        JobRequest::new(1, prob, a.clone(), b.clone())
            .faults(plan)
            .retry(RetryPolicy::attempts(2)),
    );
    let out = recovered.outcome.expect("recovery must complete the job");
    assert_eq!(recovered.attempts, 2, "one injected failure, one clean re-run");
    assert!(recovered.degraded);
    assert_eq!(out.plan.problem.p, 49, "replanned for the surviving world");

    let prob49 = MmmProblem::new(prob.m, prob.n, prob.k, 49, prob.mem_words);
    let fresh = server.run_sync(JobRequest::new(2, prob49, a, b).backend(ExecBackend::event()));
    let fresh_out = fresh.outcome.expect("fresh p' run");
    assert_eq!(fresh.attempts, 1);
    assert_eq!(out.report.c, fresh_out.report.c, "recovered product must equal a fresh p' run bitwise");
    assert_eq!(out.report.stats, fresh_out.report.stats, "virtual clocks included");
}
