//! Conformance of the serving layer (`crates/serve`) against direct
//! `RunSession` execution: a mixed multi-tenant stream served concurrently
//! must be observationally identical — bit for bit — to planning and
//! executing each job by hand, one at a time.
//!
//! This is the end-to-end guarantee the serve crate rests on: planning is a
//! pure function of the request (so cached plans are exact), and the three
//! executors are conformant (so a world run on the shared scheduler pool
//! among many tenants computes exactly what it computes alone).

use bench::serve_bench::{mixed_stream, unique_combos};
use cosma::api::{AlgoId, RunSession};
use mpsim::cost::CostModel;
use mpsim::exec::ExecBackend;
use serve::{AutoPlanner, Server, ServerConfig};

/// A ≥64-job mixed stream (repeat + unique plan keys) through a concurrent
/// [`Server`]: every `JobResult` matches a serial [`RunSession`] run of the
/// same job bitwise, at least three different algorithms are auto-selected,
/// and the plan cache absorbs the key repeats.
#[test]
fn concurrent_stream_matches_serial_run_sessions_bitwise() {
    let n_jobs = 64;
    let jobs = mixed_stream(n_jobs, None);
    assert!(unique_combos().len() < n_jobs, "the stream must repeat plan keys");

    let config = ServerConfig {
        drivers: 4,
        ..ServerConfig::default()
    };
    let server = Server::new(baselines::registry(), config).unwrap();
    let served = server.run_batch(jobs.clone());
    assert_eq!(served.len(), n_jobs);

    // The serial reference: plan and execute every job by hand with a fresh
    // auto-planner and a private RunSession — no serve crate on this path
    // beyond the selection rule itself.
    let model = CostModel::piz_daint_two_sided();
    let planner = AutoPlanner::new(baselines::registry());
    let mut selected: Vec<AlgoId> = Vec::new();
    for (job, result) in jobs.iter().zip(&served) {
        assert_eq!(job.id, result.id, "run_batch must return results in id order");
        let out = result.outcome.as_ref().expect("the mixed stream is feasible by construction");

        let reference = planner.select(&job.prob, &model, job.overlap, &job.choice).expect("feasible");
        assert_eq!(out.selection, reference.selection, "job {}: selection diverged", job.id);
        assert_eq!(*out.plan, *reference.plan, "job {}: plan diverged", job.id);

        let report = RunSession::new(job.prob)
            .registry(baselines::registry())
            .algorithm(reference.selection.algo)
            .machine(model)
            .overlap(job.overlap)
            .exec_backend(ExecBackend::auto(job.prob.p))
            .execute(&job.a, &job.b)
            .expect("serial reference run");
        assert_eq!(out.report.c, report.c, "job {}: product diverged from serial", job.id);
        assert_eq!(out.report.stats, report.stats, "job {}: counters diverged from serial", job.id);

        if !selected.contains(&out.selection.algo) {
            selected.push(out.selection.algo);
        }
    }

    assert!(selected.len() >= 3, "want >= 3 algorithms auto-selected, got {selected:?}");
    let stats = server.shutdown();
    assert!(stats.hit_rate() > 0.0, "key repeats must hit the cache: {stats:?}");
    assert_eq!(stats.hits + stats.misses, n_jobs as u64);
}

/// The same stream pinned to the event backend: virtual-clock execution
/// through the server agrees with private event runs, including the
/// per-rank α-β-γ times (event worlds interleave on the driver threads but
/// never share scheduler state).
#[test]
fn event_backend_stream_matches_serial_including_virtual_time() {
    let n_jobs = 24;
    let jobs = mixed_stream(n_jobs, Some(ExecBackend::event()));
    let server = Server::new(baselines::registry(), ServerConfig::default()).unwrap();
    let served = server.run_batch(jobs.clone());

    let model = CostModel::piz_daint_two_sided();
    let planner = AutoPlanner::new(baselines::registry());
    for (job, result) in jobs.iter().zip(&served) {
        let out = result.outcome.as_ref().expect("feasible stream");
        let reference = planner.select(&job.prob, &model, job.overlap, &job.choice).expect("feasible");
        let report = RunSession::new(job.prob)
            .registry(baselines::registry())
            .algorithm(reference.selection.algo)
            .machine(model)
            .overlap(job.overlap)
            .exec_backend(ExecBackend::event())
            .execute(&job.a, &job.b)
            .expect("serial event run");
        assert_eq!(out.report.c, report.c, "job {}: product diverged", job.id);
        // Full stats equality: the event backend's virtual clock is part of
        // the contract, not stripped.
        assert_eq!(out.report.stats, report.stats, "job {}: stats diverged", job.id);
    }
}
