//! Trait-level conformance suite: every algorithm in the full
//! [`baselines::registry`] honours the [`MmmAlgorithm`] contract on a shared
//! problem matrix —
//!
//! 1. `supports(p)` is honest: a rejected rank count makes `plan` return the
//!    same typed error (never a panic), and an accepted one never panics;
//! 2. a returned plan tiles the iteration space exactly;
//! 3. planned per-rank traffic equals executed traffic, word for word, and
//!    the executed product matches the sequential kernel.

use cosma::api::{execute_boxed, execute_boxed_with, MmmAlgorithm, PlanError, RunSession};
use cosma::problem::MmmProblem;
use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::{run_spmd_with, ExecBackend};
use mpsim::machine::MachineSpec;

/// The shared problem matrix: every shape class of §8 plus adversarial
/// primes, on rank counts that exercise every algorithm's constraints
/// (squares, powers of two, primes, and a count only COSMA fully uses).
fn shared_problems() -> Vec<MmmProblem> {
    vec![
        MmmProblem::new(24, 24, 24, 4, 1 << 12),  // square, p square+pow2
        MmmProblem::new(32, 32, 32, 16, 1 << 13), // square, larger
        MmmProblem::new(29, 31, 37, 16, 1 << 13), // adversarial primes
        MmmProblem::new(12, 12, 160, 8, 1 << 12), // largeK
        MmmProblem::new(96, 12, 12, 8, 1 << 12),  // largeM
        MmmProblem::new(40, 40, 6, 16, 1 << 12),  // flat
        MmmProblem::new(30, 30, 30, 12, 1 << 12), // p = 12: not square, not 2^x
        MmmProblem::new(22, 26, 34, 7, 1 << 12),  // p = 7: prime
        MmmProblem::new(64, 64, 64, 8, 1 << 10),  // memory-starved: CARMA streams DFS leaves
    ]
}

fn model() -> CostModel {
    CostModel::piz_daint_two_sided()
}

#[test]
fn supports_is_honest_and_plan_never_panics() {
    let reg = baselines::registry();
    for prob in shared_problems() {
        for algo in reg.all() {
            let id = algo.id();
            match algo.supports(&prob) {
                Ok(()) => {
                    // An accepted problem must plan or report a typed
                    // feasibility error — never panic.
                    if let Err(e) = algo.plan(&prob, &model()) {
                        assert_eq!(e, PlanError::NoFeasibleGrid, "{id} on p={}: {e}", prob.p);
                    }
                }
                Err(e) => {
                    assert!(
                        matches!(e, PlanError::UnsupportedRanks { algo, p, .. } if algo == id && p == prob.p),
                        "{id}: supports() must name itself and p, got {e}"
                    );
                    assert_eq!(
                        algo.plan(&prob, &model()).unwrap_err(),
                        e,
                        "{id} on p={}: plan must report the same constraint supports() reports",
                        prob.p
                    );
                }
            }
        }
    }
}

#[test]
fn plans_tile_the_iteration_space() {
    let reg = baselines::registry();
    for prob in shared_problems() {
        for algo in reg.all() {
            if algo.supports(&prob).is_err() {
                continue;
            }
            let Ok(plan) = algo.plan(&prob, &model()) else {
                continue;
            };
            assert_eq!(plan.algo, algo.id(), "plan must carry its maker's id");
            plan.validate_coverage()
                .unwrap_or_else(|e| panic!("{} on p={}: {e}", algo.id(), prob.p));
        }
    }
}

#[test]
fn planned_traffic_equals_executed_traffic() {
    let reg = baselines::registry();
    for prob in shared_problems() {
        let a = Matrix::deterministic(prob.m, prob.k, 91);
        let b = Matrix::deterministic(prob.k, prob.n, 92);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
        for algo in reg.all() {
            let id = algo.id();
            if algo.supports(&prob).is_err() {
                continue;
            }
            let Ok(plan) = algo.plan(&prob, &model()) else {
                continue;
            };
            let report = execute_boxed(algo.as_ref(), &plan, &spec, &a, &b)
                .unwrap_or_else(|e| panic!("{id} on p={}: {e}", prob.p));
            assert!(
                want.approx_eq(&report.c, 1e-9),
                "{id} on p={}: product off by {}",
                prob.p,
                want.max_abs_diff(&report.c)
            );
            for (r, st) in report.stats.iter().enumerate() {
                assert_eq!(
                    st.total_recv(),
                    plan.ranks[r].comm_words(),
                    "{id} on p={}: rank {r} executed traffic deviates from the plan",
                    prob.p
                );
            }
        }
    }
}

/// The large-world problem matrix: paper-scale rank counts that only the
/// sharded executor can run end-to-end (the threaded backend caps at 512).
/// p = 2048 is not a perfect square, so Cannon's `supports` veto is also
/// exercised at scale; matrices are sized so every rank still owns work.
fn large_world_problems() -> Vec<MmmProblem> {
    vec![
        MmmProblem::new(256, 256, 256, 1024, 1 << 20),
        MmmProblem::new(192, 224, 512, 2048, 1 << 20),
        MmmProblem::new(256, 256, 256, 4096, 1 << 20),
    ]
}

/// Plan-vs-executed traffic equality at p ∈ {1024, 2048, 4096} on the
/// sharded backend — the conformance contract at the paper's rank counts.
/// Slow (thousands of carrier threads per algorithm): run via
/// `cargo test -- --ignored` (the CI `large-world` job).
#[test]
#[ignore = "large world (>= 1024 ranks); run with --ignored"]
fn sharded_large_world_traffic_matches_plan() {
    let reg = baselines::registry();
    for prob in large_world_problems() {
        let a = Matrix::deterministic(prob.m, prob.k, 31);
        let b = Matrix::deterministic(prob.k, prob.n, 32);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
        let backend = ExecBackend::Sharded {
            workers: ExecBackend::default_workers(),
        };
        for algo in reg.all() {
            let id = algo.id();
            if algo.supports(&prob).is_err() {
                continue;
            }
            let Ok(plan) = algo.plan(&prob, &model()) else {
                continue;
            };
            let report = execute_boxed_with(algo.as_ref(), &plan, &spec, backend, &a, &b)
                .unwrap_or_else(|e| panic!("{id} on p={}: {e}", prob.p));
            assert!(
                want.approx_eq(&report.c, 1e-9),
                "{id} on p={}: product off by {}",
                prob.p,
                want.max_abs_diff(&report.c)
            );
            for (r, st) in report.stats.iter().enumerate() {
                assert_eq!(
                    st.total_recv(),
                    plan.ranks[r].comm_words(),
                    "{id} on p={}: rank {r} executed traffic deviates from the plan",
                    prob.p
                );
            }
        }
    }
}

/// `RunSession::execute` past the threaded cap: the auto backend falls back
/// to the sharded executor, and the verified contract still holds.
#[test]
fn session_auto_backend_executes_beyond_threaded_cap() {
    let prob = MmmProblem::new(128, 128, 128, 600, 1 << 18);
    let a = Matrix::deterministic(prob.m, prob.k, 41);
    let b = Matrix::deterministic(prob.k, prob.n, 42);
    let (plan, report) = RunSession::new(prob)
        .registry(baselines::registry())
        .execute_verified(&a, &b)
        .expect("auto backend must shard beyond the threaded cap");
    assert_eq!(plan.problem.p, 600);
    assert_eq!(report.total_recv_words(), plan.total_comm_words());
}

/// Backend equivalence: for every registry algorithm on the shared (≤ 512
/// rank) problem matrix, the threaded, sharded and event executors produce
/// bitwise identical per-rank `CPart` results and identical per-rank
/// counters — scheduling must never change what is computed or measured.
#[test]
fn all_three_backends_agree_exactly() {
    let reg = baselines::registry();
    let mut probs = shared_problems();
    probs.push(MmmProblem::new(64, 64, 64, 256, 1 << 16));
    for prob in probs {
        let a = Matrix::deterministic(prob.m, prob.k, 21);
        let b = Matrix::deterministic(prob.k, prob.n, 22);
        let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
        for algo in reg.all() {
            let id = algo.id();
            if algo.supports(&prob).is_err() {
                continue;
            }
            let Ok(plan) = algo.plan(&prob, &model()) else {
                continue;
            };
            let run = |backend: ExecBackend| {
                let (algo, plan, a, b) = (algo.as_ref(), &plan, &a, &b);
                run_spmd_with(&spec, backend, move |mut c| async move {
                    algo.execute_rank(&mut c, plan, a, b).await
                })
                .unwrap_or_else(|e| panic!("{id} on p={}: {e}", prob.p))
            };
            let strip = |stats: &[mpsim::RankStats]| stats.iter().map(|s| s.sans_time()).collect::<Vec<_>>();
            let threaded = run(ExecBackend::Threaded);
            let mut event_runs = Vec::new();
            for backend in [
                ExecBackend::Sharded { workers: 3 },
                ExecBackend::event(),
                ExecBackend::Event { threads: 2 },
                ExecBackend::Event { threads: 4 },
            ] {
                let other = run(backend);
                assert_eq!(
                    threaded.results, other.results,
                    "{id} on p={}: {backend} disagrees on CPart results",
                    prob.p
                );
                // Counters agree bit for bit; the event backend additionally
                // fills the virtual-clock fields the blocking ones leave 0.
                assert_eq!(
                    strip(&threaded.stats),
                    strip(&other.stats),
                    "{id} on p={}: {backend} disagrees on measured counters",
                    prob.p
                );
                if matches!(backend, ExecBackend::Event { .. }) {
                    assert!(
                        mpsim::stats::aggregate::machine_time_s(&other.stats) > 0.0,
                        "{id} on p={}: the event backend must measure virtual time",
                        prob.p
                    );
                    event_runs.push((backend, other));
                }
            }
            // Among event-scheduler runs, the full stats — virtual times
            // included — must be bitwise-identical at every thread count.
            let (_, single) = &event_runs[0];
            for (backend, par) in &event_runs[1..] {
                assert_eq!(
                    single.stats, par.stats,
                    "{id} on p={}: {backend} virtual times diverge from the single-threaded scheduler",
                    prob.p
                );
            }
        }
    }
}

/// The shared reference size of the acceptance contract: at p = 2048, the
/// sharded worker pool and the event-driven stackless executor produce
/// bitwise-identical results and identical traffic counters for every
/// applicable algorithm. Slow; run via `cargo test -- --ignored` (CI
/// `large-world` job).
#[test]
#[ignore = "large world (2048 ranks); run with --ignored"]
fn event_and_sharded_agree_exactly_at_p2048() {
    let reg = baselines::registry();
    let prob = MmmProblem::new(192, 224, 512, 2048, 1 << 20);
    let a = Matrix::deterministic(prob.m, prob.k, 31);
    let b = Matrix::deterministic(prob.k, prob.n, 32);
    let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words);
    for algo in reg.all() {
        let id = algo.id();
        if algo.supports(&prob).is_err() {
            continue;
        }
        let Ok(plan) = algo.plan(&prob, &model()) else {
            continue;
        };
        let run = |backend: ExecBackend| {
            execute_boxed_with(algo.as_ref(), &plan, &spec, backend, &a, &b)
                .unwrap_or_else(|e| panic!("{id}: {e}"))
        };
        let sharded = run(ExecBackend::Sharded {
            workers: ExecBackend::default_workers(),
        });
        let event = run(ExecBackend::event());
        assert_eq!(
            sharded.c.as_slice(),
            event.c.as_slice(),
            "{id} at p=2048: backends disagree on the product bitwise"
        );
        let strip = |stats: &[mpsim::RankStats]| stats.iter().map(|s| s.sans_time()).collect::<Vec<_>>();
        assert_eq!(
            strip(&sharded.stats),
            strip(&event.stats),
            "{id} at p=2048: backends disagree on measured counters"
        );
        for (r, st) in event.stats.iter().enumerate() {
            assert_eq!(
                st.total_recv(),
                plan.ranks[r].comm_words(),
                "{id} at p=2048: rank {r} event traffic deviates from the plan"
            );
        }
    }
}

/// The acceptance criterion's XL world: a `XL_RANKS` (default 131072) rank
/// COSMA execution end-to-end on the event backend, with real messages, a
/// verified product and plan-exact per-rank traffic. No carrier-thread
/// backend can hold a world this size; the stackless state machines cost
/// bytes per rank. Run via `cargo test --release -- --ignored` (the CI
/// `large-world` matrix sets `XL_RANKS` to 16384/65536/131072).
#[test]
#[ignore = "xl world (>= 16384 ranks); run with --ignored"]
fn event_xl_world_executes_end_to_end() {
    let p: usize = std::env::var("XL_RANKS").ok().and_then(|s| s.parse().ok()).unwrap_or(131_072);
    // The same instance the `exec-xl` experiment records in EXPERIMENTS.md.
    let prob = bench::scenarios::exec_xl_problem(p);
    let algo = cosma::api::CosmaAlgorithm::default();
    let plan = algo.plan(&prob, &model()).unwrap_or_else(|e| panic!("p={p}: {e}"));
    plan.validate_coverage().expect("XL plan tiles the space");
    let a = Matrix::deterministic(prob.m, prob.k, 71);
    let b = Matrix::deterministic(prob.k, prob.n, 72);
    let want = matmul(&a, &b);
    let spec = MachineSpec::piz_daint_with_memory(p, prob.mem_words);
    let report = execute_boxed_with(&algo, &plan, &spec, ExecBackend::event(), &a, &b)
        .unwrap_or_else(|e| panic!("p={p}: {e}"));
    assert!(want.approx_eq(&report.c, 1e-9), "p={p}: product off by {}", want.max_abs_diff(&report.c));
    for (r, st) in report.stats.iter().enumerate() {
        assert_eq!(
            st.total_recv(),
            plan.ranks[r].comm_words(),
            "p={p}: rank {r} executed traffic deviates from the plan"
        );
    }
}

/// An integer-valued matrix: every product and partial sum is an exactly
/// representable integer (well below 2^53), so *any* summation order yields
/// bitwise-identical results — what makes the DFS-vs-BFS equality below a
/// legitimate bitwise assertion rather than an epsilon comparison.
fn int_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| ((i as u64 * 31 + j as u64 * 17 + seed) % 7) as f64 - 3.0)
}

/// The memory-budgeted streaming contract: a CARMA problem whose pure-BFS
/// leaf working set exceeds `S` executes end-to-end on all three backends
/// with an *enforced* budget, produces the bit-exact product of both the
/// ample-memory BFS run and the dense reference GEMM, moves exactly the
/// DFS plan's words, and keeps every rank's measured peak within `S`.
#[test]
fn dfs_carma_matches_bfs_and_reference_bitwise_on_all_backends() {
    let tight = MmmProblem::new(64, 64, 64, 8, 1 << 10);
    let ample = MmmProblem::new(64, 64, 64, 8, 1 << 20);
    assert!(baselines::carma::dfs_leaf_count(&tight) > 1, "tight problem must force DFS");
    assert_eq!(baselines::carma::dfs_leaf_count(&ample), 1, "ample problem must stay pure BFS");
    let a = int_matrix(64, 64, 3);
    let b = int_matrix(64, 64, 5);
    let want = matmul(&a, &b);
    let algo = baselines::registry().by_id(cosma::api::AlgoId::Carma).unwrap();
    let run = |prob: &MmmProblem, backend: ExecBackend| {
        let plan = algo.plan(prob, &model()).unwrap();
        plan.validate().expect("CARMA plans are memory-honest in both regimes");
        let spec = MachineSpec::piz_daint_with_memory(prob.p, prob.mem_words).enforcing_memory();
        let report = execute_boxed_with(algo.as_ref(), &plan, &spec, backend, &a, &b)
            .unwrap_or_else(|e| panic!("{backend} S={}: {e}", prob.mem_words));
        for (r, st) in report.stats.iter().enumerate() {
            assert_eq!(
                st.total_recv(),
                plan.ranks[r].comm_words(),
                "{backend} S={}: rank {r} traffic deviates from the DFS plan",
                prob.mem_words
            );
            assert!(
                st.peak_mem_words <= prob.mem_words as u64,
                "{backend} S={}: rank {r} peaked at {} words",
                prob.mem_words,
                st.peak_mem_words
            );
        }
        report.c
    };
    let c_bfs = run(&ample, ExecBackend::Threaded);
    assert_eq!(c_bfs.as_slice(), want.as_slice(), "BFS CARMA vs reference GEMM");
    for backend in [
        ExecBackend::Threaded,
        ExecBackend::Sharded { workers: 3 },
        ExecBackend::event(),
    ] {
        let c_dfs = run(&tight, backend);
        assert_eq!(c_dfs.as_slice(), c_bfs.as_slice(), "{backend}: DFS vs BFS product not bitwise equal");
        assert_eq!(c_dfs.as_slice(), want.as_slice(), "{backend}: DFS vs reference not bitwise equal");
    }
}

/// COSMA's one-sided (RMA) backend on the sharded executor: `fence` is a
/// barrier rendezvous, so the epoch protocol must survive slot hand-offs.
#[test]
fn one_sided_cosma_executes_on_the_sharded_backend() {
    use cosma::algorithm::Backend;
    let prob = MmmProblem::new(48, 40, 56, 12, 1 << 13);
    let a = Matrix::deterministic(prob.m, prob.k, 5);
    let b = Matrix::deterministic(prob.k, prob.n, 6);
    let (plan, report) = RunSession::new(prob)
        .backend(Backend::OneSided)
        .exec_backend(ExecBackend::Sharded { workers: 2 })
        .execute_verified(&a, &b)
        .unwrap();
    assert_eq!(report.total_recv_words(), plan.total_comm_words());
}

#[test]
fn execute_on_wrong_world_is_an_error_for_every_algorithm() {
    let reg = baselines::registry();
    let prob = MmmProblem::new(16, 16, 16, 4, 1 << 12);
    let a = Matrix::deterministic(prob.m, prob.k, 1);
    let b = Matrix::deterministic(prob.k, prob.n, 2);
    let wrong = MachineSpec::piz_daint_with_memory(9, prob.mem_words);
    for algo in reg.all() {
        if algo.supports(&prob).is_err() {
            continue;
        }
        let plan = algo.plan(&prob, &model()).unwrap();
        let err = execute_boxed(algo.as_ref(), &plan, &wrong, &a, &b).unwrap_err();
        assert_eq!(
            err,
            PlanError::WorldSizeMismatch {
                plan_ranks: 4,
                world_ranks: 9
            },
            "{}",
            algo.id()
        );
    }
}
